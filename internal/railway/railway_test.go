package railway

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func mustTrip(t *testing.T, track Track, p SpeedProfile) Trip {
	t.Helper()
	trip, err := NewTrip(track, p)
	if err != nil {
		t.Fatalf("NewTrip: %v", err)
	}
	return trip
}

func TestNewTripValidation(t *testing.T) {
	tests := []struct {
		name    string
		track   Track
		profile SpeedProfile
		wantErr bool
	}{
		{"default BTR", BeijingTianjin, DefaultProfile, false},
		{"stationary", BeijingTianjin, StationaryProfile, false},
		{"zero length", Track{LengthKm: 0}, DefaultProfile, true},
		{"negative speed", BeijingTianjin, SpeedProfile{CruiseKmh: -1, AccelMS2: 1}, true},
		{"unreachable cruise", BeijingTianjin, SpeedProfile{CruiseKmh: 300, AccelMS2: 0}, true},
		{"track too short", Track{LengthKm: 1}, SpeedProfile{CruiseKmh: 300, AccelMS2: 0.35}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewTrip(tt.track, tt.profile)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewTrip err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestBTRTripDuration(t *testing.T) {
	trip := mustTrip(t, BeijingTianjin, DefaultProfile)
	d := trip.Duration()
	// The paper reports ~33 minutes for the one-way trip; our trapezoid with
	// a 0.35 m/s^2 ramp should land in the same ballpark (25-40 min).
	if d < 25*time.Minute || d > 40*time.Minute {
		t.Errorf("BTR trip duration = %v, want 25-40 min", d)
	}
}

func TestPositionEndpoints(t *testing.T) {
	trip := mustTrip(t, BeijingTianjin, DefaultProfile)
	if got := trip.PositionKm(0); got != 0 {
		t.Errorf("PositionKm(0) = %v, want 0", got)
	}
	if got := trip.PositionKm(trip.Duration()); got != BeijingTianjin.LengthKm {
		t.Errorf("PositionKm(end) = %v, want %v", got, BeijingTianjin.LengthKm)
	}
	if got := trip.PositionKm(trip.Duration() + time.Hour); got != BeijingTianjin.LengthKm {
		t.Errorf("PositionKm(past end) = %v, want clamp to %v", got, BeijingTianjin.LengthKm)
	}
	if got := trip.PositionKm(-time.Second); got != 0 {
		t.Errorf("PositionKm(negative) = %v, want 0", got)
	}
}

func TestSpeedProfileShape(t *testing.T) {
	trip := mustTrip(t, BeijingTianjin, DefaultProfile)
	start, end := trip.CruiseWindow()
	if start <= 0 || end <= start || end >= trip.Duration() {
		t.Fatalf("CruiseWindow = (%v, %v) out of order for duration %v", start, end, trip.Duration())
	}
	if got := trip.SpeedKmh(0); got != 0 {
		t.Errorf("speed at departure = %v, want 0", got)
	}
	mid := (start + end) / 2
	if got := trip.SpeedKmh(mid); got != 300 {
		t.Errorf("cruise speed = %v, want 300", got)
	}
	if got := trip.SpeedKmh(trip.Duration()); got != 0 {
		t.Errorf("speed at arrival = %v, want 0", got)
	}
	// Half-ramp speed should be half of cruise (constant acceleration).
	if got := trip.SpeedKmh(start / 2); math.Abs(got-150) > 1 {
		t.Errorf("half-ramp speed = %v, want ~150", got)
	}
}

func TestPositionMonotone(t *testing.T) {
	trip := mustTrip(t, BeijingTianjin, DefaultProfile)
	prev := -1.0
	for at := time.Duration(0); at <= trip.Duration(); at += 10 * time.Second {
		pos := trip.PositionKm(at)
		if pos < prev {
			t.Fatalf("position decreased at %v: %v -> %v", at, prev, pos)
		}
		if pos < 0 || pos > BeijingTianjin.LengthKm {
			t.Fatalf("position %v outside track at %v", pos, at)
		}
		prev = pos
	}
}

func TestPositionContinuousAtPhaseBoundaries(t *testing.T) {
	trip := mustTrip(t, BeijingTianjin, DefaultProfile)
	start, end := trip.CruiseWindow()
	for _, boundary := range []time.Duration{start, end} {
		before := trip.PositionKm(boundary - time.Millisecond)
		after := trip.PositionKm(boundary + time.Millisecond)
		if math.Abs(after-before) > 0.001 { // < 1 m jump across 2 ms
			t.Errorf("position discontinuity at %v: %v -> %v", boundary, before, after)
		}
	}
}

func TestStationaryTrip(t *testing.T) {
	trip := mustTrip(t, BeijingTianjin, StationaryProfile)
	if !trip.Stationary() {
		t.Error("stationary trip not reported as stationary")
	}
	if trip.Duration() != 0 {
		t.Errorf("stationary Duration = %v, want 0", trip.Duration())
	}
	if got := trip.PositionKm(time.Hour); got != 0 {
		t.Errorf("stationary PositionKm = %v, want 0", got)
	}
	if got := trip.SpeedKmh(time.Hour); got != 0 {
		t.Errorf("stationary SpeedKmh = %v, want 0", got)
	}
	s, e := trip.CruiseWindow()
	if s != 0 || e != 0 {
		t.Errorf("stationary CruiseWindow = (%v, %v), want (0, 0)", s, e)
	}
}

// Property: for random valid profiles, position is within the track, speed
// is within [0, cruise], and the end of the trip reaches the far station.
func TestTripProperties(t *testing.T) {
	f := func(lenSeed, speedSeed, accelSeed uint16, frac float64) bool {
		lengthKm := 50 + float64(lenSeed%400)       // 50-450 km
		cruise := 100 + float64(speedSeed%300)      // 100-400 km/h
		accel := 0.2 + float64(accelSeed%100)/100.0 // 0.2-1.2 m/s^2
		trip, err := NewTrip(Track{Name: "t", LengthKm: lengthKm}, SpeedProfile{CruiseKmh: cruise, AccelMS2: accel})
		if err != nil {
			return true // rejected configurations are fine
		}
		fr := math.Abs(frac) - math.Floor(math.Abs(frac))
		at := time.Duration(fr * float64(trip.Duration()))
		pos := trip.PositionKm(at)
		speed := trip.SpeedKmh(at)
		return pos >= 0 && pos <= lengthKm && speed >= 0 && speed <= cruise+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPositionMatchesIntegralOfSpeed(t *testing.T) {
	trip := mustTrip(t, BeijingTianjin, DefaultProfile)
	// Numerically integrate speed and compare with PositionKm.
	const dt = 100 * time.Millisecond
	var integral float64 // km
	for at := time.Duration(0); at < trip.Duration(); at += dt {
		integral += trip.SpeedKmh(at) * dt.Hours()
	}
	want := BeijingTianjin.LengthKm
	if math.Abs(integral-want) > 0.5 {
		t.Errorf("integral of speed = %v km, want ~%v km", integral, want)
	}
	half := trip.Duration() / 2
	var halfIntegral float64
	for at := time.Duration(0); at < half; at += dt {
		halfIntegral += trip.SpeedKmh(at) * dt.Hours()
	}
	if math.Abs(halfIntegral-trip.PositionKm(half)) > 0.5 {
		t.Errorf("integral to half = %v, PositionKm = %v", halfIntegral, trip.PositionKm(half))
	}
}
