package cellular

import (
	"testing"
	"time"

	"repro/internal/railway"
	"repro/internal/sim"
)

func btrTrip(t *testing.T) railway.Trip {
	t.Helper()
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		t.Fatalf("NewTrip: %v", err)
	}
	return trip
}

func stationaryTrip(t *testing.T) railway.Trip {
	t.Helper()
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.StationaryProfile)
	if err != nil {
		t.Fatalf("NewTrip: %v", err)
	}
	return trip
}

func TestOperatorProfilesValid(t *testing.T) {
	for _, op := range Operators() {
		if err := op.Validate(); err != nil {
			t.Errorf("%s: %v", op.Name, err)
		}
	}
}

func TestOperatorValidateRejects(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Operator)
	}{
		{"empty name", func(o *Operator) { o.Name = "" }},
		{"zero downlink", func(o *Operator) { o.DownlinkRate = 0 }},
		{"negative delay", func(o *Operator) { o.DownDelay = -time.Second }},
		{"probability > 1", func(o *Operator) { o.HandoffAckLoss = 1.5 }},
		{"zero cell spacing", func(o *Operator) { o.CellSpacingKm = 0 }},
		{"handoff max < min", func(o *Operator) { o.HandoffMax = o.HandoffMin - time.Millisecond }},
		{"gap fraction without count", func(o *Operator) { o.GapFraction = 0.1; o.GapCount = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			op := ChinaMobileLTE
			tt.mutate(&op)
			if err := op.Validate(); err == nil {
				t.Errorf("Validate accepted bad profile %q", tt.name)
			}
		})
	}
}

func TestTechString(t *testing.T) {
	if LTE.String() != "LTE" || ThreeG.String() != "3G" {
		t.Error("Tech.String mismatch")
	}
	if got := Tech(42).String(); got != "Tech(42)" {
		t.Errorf("unknown Tech.String = %q", got)
	}
}

func TestChannelHandoffCadence(t *testing.T) {
	trip := btrTrip(t)
	rng := sim.NewRand(1, sim.StreamHandoff)
	start, _ := trip.CruiseWindow()
	horizon := 120 * time.Second
	ch, err := NewChannel(ChinaMobileLTE, trip, start, horizon, rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	// At 300 km/h with 1 km cells, a handoff every 12 s => ~10 in 120 s.
	got := ch.HandoffCount()
	if got < 8 || got > 12 {
		t.Errorf("HandoffCount = %d, want ~10", got)
	}
}

func TestChannelStationaryHasNoHandoffs(t *testing.T) {
	trip := stationaryTrip(t)
	rng := sim.NewRand(2, sim.StreamHandoff)
	ch, err := NewChannel(ChinaMobileLTE, trip, 0, time.Hour, rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	// A stationary phone sees only rare micro-outages: roughly one per
	// 250 s on average, each a few hundred milliseconds.
	got := ch.HandoffCount()
	if got < 5 || got > 30 {
		t.Errorf("stationary micro-outages over 1h = %d, want ~14", got)
	}
	var outageTime time.Duration
	for _, h := range ch.handoffs {
		d := h.end - h.start
		if d < stationaryOutageMin || d >= stationaryOutageMax {
			t.Errorf("micro-outage duration %v outside [%v, %v)", d, stationaryOutageMin, stationaryOutageMax)
		}
		outageTime += d
	}
	if frac := float64(outageTime) / float64(time.Hour); frac > 0.005 {
		t.Errorf("stationary outage time fraction = %v, want < 0.5%%", frac)
	}
	// Outside the micro-outages, loss at rest equals the base rate exactly
	// (no speed term).
	var clean time.Duration = -1
	for ft := time.Duration(0); ft < time.Hour; ft += time.Second {
		if !ch.InHandoff(ft) {
			clean = ft
			break
		}
	}
	if clean < 0 {
		t.Fatal("no clean moment found")
	}
	if got := ch.DataLossProb(clean); got != ChinaMobileLTE.BaseDataLoss {
		t.Errorf("stationary DataLossProb = %v, want base %v", got, ChinaMobileLTE.BaseDataLoss)
	}
	if got := ch.AckLossProb(clean); got != ChinaMobileLTE.BaseAckLoss {
		t.Errorf("stationary AckLossProb = %v, want base %v", got, ChinaMobileLTE.BaseAckLoss)
	}
	if got := ch.ExtraDelay(clean); got != 0 {
		t.Errorf("stationary ExtraDelay = %v, want 0", got)
	}
}

func TestChannelLossSpikesDuringHandoff(t *testing.T) {
	trip := btrTrip(t)
	rng := sim.NewRand(3, sim.StreamHandoff)
	start, _ := trip.CruiseWindow()
	ch, err := NewChannel(ChinaMobileLTE, trip, start, 120*time.Second, rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	if len(ch.handoffs) == 0 {
		t.Fatal("no handoffs precomputed")
	}
	h := ch.handoffs[0]
	mid := h.start + (h.end-h.start)/2
	inside := ch.AckLossProb(mid)
	if inside < ChinaMobileLTE.HandoffAckLoss {
		t.Errorf("ACK loss during handoff = %v, want >= %v", inside, ChinaMobileLTE.HandoffAckLoss)
	}
	// Find a handoff-free moment for the outside-the-outage checks.
	var clean time.Duration = -1
	for ft := time.Duration(0); ft < 120*time.Second; ft += 200 * time.Millisecond {
		if !ch.InHandoff(ft) {
			clean = ft
			break
		}
	}
	if clean < 0 {
		t.Fatal("no handoff-free moment in 120s")
	}
	if outside := ch.AckLossProb(clean); outside > 0.05 {
		t.Errorf("ACK loss outside handoff = %v, want residual-level", outside)
	}
	if !ch.InHandoff(mid) {
		t.Error("InHandoff(mid) = false")
	}
	if ch.ExtraDelay(clean) != 0 {
		t.Error("ExtraDelay outside handoff should be 0")
	}
	// During the outage the bearer buffers: delay inflation is the remaining
	// outage plus the signalling cost.
	want := (h.end - mid) + ChinaMobileLTE.HandoffDelay
	if got := ch.ExtraDelay(mid); got != want {
		t.Errorf("ExtraDelay during handoff = %v, want %v", got, want)
	}
	// Probes sent during the outage face the probe loss; packets arriving
	// into it face the (lower) flush loss.
	probe := ch.DataTransitProb(mid, h.end+time.Second)
	straddle := ch.DataTransitProb(h.start-time.Millisecond, mid)
	if probe <= straddle {
		t.Errorf("probe loss %v should exceed straddle loss %v", probe, straddle)
	}
	if probe < ChinaMobileLTE.HandoffProbeLoss {
		t.Errorf("probe loss = %v, want >= %v", probe, ChinaMobileLTE.HandoffProbeLoss)
	}
	if straddle < ChinaMobileLTE.HandoffDataLoss {
		t.Errorf("straddle loss = %v, want >= %v", straddle, ChinaMobileLTE.HandoffDataLoss)
	}
	// ACK loss depends only on the sent epoch: an ACK sent on a clean
	// channel is safe even if it "arrives" during an outage.
	if got := ch.AckTransitProb(clean, mid); got > 0.05 {
		t.Errorf("ACK sent on clean channel lost at %v", got)
	}
}

func TestChannelSpeedLossAtCruise(t *testing.T) {
	trip := btrTrip(t)
	rng := sim.NewRand(4, sim.StreamHandoff)
	start, _ := trip.CruiseWindow()
	ch, err := NewChannel(ChinaMobileLTE, trip, start, 60*time.Second, rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	// Find a moment outside any handoff window.
	var at time.Duration = -1
	for ft := time.Duration(0); ft < 60*time.Second; ft += time.Second {
		if !ch.InHandoff(ft) {
			at = ft
			break
		}
	}
	if at < 0 {
		t.Fatal("no handoff-free moment found")
	}
	want := ChinaMobileLTE.BaseDataLoss + ChinaMobileLTE.SpeedDataLoss // (300/300)^2 = 1
	got := ch.DataLossProb(at)
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cruise DataLossProb = %v, want %v", got, want)
	}
}

func TestChannelTelecomGaps(t *testing.T) {
	trip := btrTrip(t)
	rng := sim.NewRand(5, sim.StreamHandoff)
	// Cover the full cruise so that the flow crosses gaps with high
	// probability (22% of the track).
	start, end := trip.CruiseWindow()
	ch, err := NewChannel(ChinaTelecom3G, trip, start, end-start, rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	if len(ch.gaps) == 0 {
		t.Fatal("Telecom channel across the whole cruise has no coverage gaps")
	}
	// Total gap time should be a meaningful share of the trip (not exact
	// because gaps may overlap and extend beyond the ramps).
	var gapTime time.Duration
	for _, g := range ch.gaps {
		gapTime += g.end - g.start
	}
	frac := float64(gapTime) / float64(end-start)
	if frac < 0.08 || frac > 0.45 {
		t.Errorf("gap time fraction = %v, want roughly 0.1-0.4", frac)
	}
	mid := ch.gaps[0].start + (ch.gaps[0].end-ch.gaps[0].start)/2
	if !ch.InGap(mid) {
		t.Error("InGap inside a gap = false")
	}
	if ch.DataLossProb(mid) < ChinaTelecom3G.GapLoss {
		t.Errorf("loss inside gap = %v, want >= %v", ch.DataLossProb(mid), ChinaTelecom3G.GapLoss)
	}
}

func TestChannelMobileHasNoGaps(t *testing.T) {
	trip := btrTrip(t)
	rng := sim.NewRand(6, sim.StreamHandoff)
	start, end := trip.CruiseWindow()
	ch, err := NewChannel(ChinaMobileLTE, trip, start, end-start, rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	if len(ch.gaps) != 0 {
		t.Errorf("Mobile channel has %d gaps, want 0", len(ch.gaps))
	}
}

func TestChannelDeterministic(t *testing.T) {
	trip := btrTrip(t)
	build := func() *Channel {
		rng := sim.NewRand(7, sim.StreamHandoff)
		ch, err := NewChannel(ChinaUnicom3G, trip, 300*time.Second, 120*time.Second, rng)
		if err != nil {
			t.Fatalf("NewChannel: %v", err)
		}
		return ch
	}
	a, b := build(), build()
	if a.HandoffCount() != b.HandoffCount() {
		t.Fatal("same seed produced different handoff counts")
	}
	for i := range a.handoffs {
		if a.handoffs[i] != b.handoffs[i] {
			t.Fatal("same seed produced different handoff windows")
		}
	}
}

func TestChannelProbabilitiesBounded(t *testing.T) {
	trip := btrTrip(t)
	rng := sim.NewRand(8, sim.StreamHandoff)
	ch, err := NewChannel(ChinaTelecom3G, trip, 0, trip.Duration(), rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	for ft := time.Duration(0); ft < trip.Duration(); ft += 500 * time.Millisecond {
		for _, p := range []float64{ch.DataLossProb(ft), ch.AckLossProb(ft)} {
			if p < 0 || p > 1 {
				t.Fatalf("loss probability %v out of range at %v", p, ft)
			}
		}
	}
}

func TestNewChannelRejectsBadArgs(t *testing.T) {
	trip := btrTrip(t)
	rng := sim.NewRand(9, sim.StreamHandoff)
	if _, err := NewChannel(ChinaMobileLTE, trip, -time.Second, time.Minute, rng); err == nil {
		t.Error("negative tripOffset accepted")
	}
	if _, err := NewChannel(ChinaMobileLTE, trip, 0, 0, rng); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := ChinaMobileLTE
	bad.Name = ""
	if _, err := NewChannel(bad, trip, 0, time.Minute, rng); err == nil {
		t.Error("invalid operator accepted")
	}
}

func TestMergeSpans(t *testing.T) {
	in := []span{
		{start: 10 * time.Second, end: 12 * time.Second},
		{start: 1 * time.Second, end: 3 * time.Second},
		{start: 2 * time.Second, end: 5 * time.Second},
		{start: 5 * time.Second, end: 6 * time.Second}, // touching merges too
	}
	got := mergeSpans(in)
	want := []span{
		{start: 1 * time.Second, end: 6 * time.Second},
		{start: 10 * time.Second, end: 12 * time.Second},
	}
	if len(got) != len(want) {
		t.Fatalf("mergeSpans = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeSpans[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if mergeSpans(nil) != nil {
		t.Error("mergeSpans(nil) should be nil")
	}
}

func TestInSpans(t *testing.T) {
	spans := []span{
		{start: time.Second, end: 2 * time.Second},
		{start: 5 * time.Second, end: 6 * time.Second},
	}
	tests := []struct {
		at   time.Duration
		want bool
	}{
		{0, false},
		{time.Second, true},
		{1500 * time.Millisecond, true},
		{2 * time.Second, false}, // half-open
		{3 * time.Second, false},
		{5500 * time.Millisecond, true},
		{7 * time.Second, false},
	}
	for _, tt := range tests {
		if got := inSpans(spans, tt.at); got != tt.want {
			t.Errorf("inSpans(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestAddOutages(t *testing.T) {
	trip := stationaryTrip(t)
	ch, err := NewChannel(ChinaMobileLTE, trip, 0, 120*time.Second, sim.NewRand(9, sim.StreamHandoff))
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	base := ch.HandoffCount()

	probe := 40 * time.Second
	if ch.InHandoff(probe) {
		t.Skip("natural outage collides with the injected window; unreachable for this seed")
	}
	wasAck := ch.AckLossProb(probe)
	ch.AddOutages([]Outage{
		{Start: 39 * time.Second, End: 42 * time.Second},
		{Start: 41 * time.Second, End: 43 * time.Second}, // overlaps: must merge
		{Start: 50 * time.Second, End: 50 * time.Second}, // empty: ignored
		{Start: -5 * time.Second, End: -1 * time.Second}, // negative: ignored
	})

	if !ch.InHandoff(probe) {
		t.Fatal("injected outage not visible to InHandoff")
	}
	if got := ch.AckLossProb(probe); got <= wasAck {
		t.Errorf("ACK loss inside injected outage = %v, want > baseline %v", got, wasAck)
	}
	if ch.ExtraDelay(probe) < 3*time.Second {
		// Mid-outage at t=40s the merged window [39s,43s) has 3s remaining.
		t.Errorf("ExtraDelay inside injected outage = %v, want >= remaining window", ch.ExtraDelay(probe))
	}
	if ch.InHandoff(50 * time.Second) {
		t.Error("empty outage window should have been ignored")
	}
	// The two overlapping windows merged into one; the degenerate ones
	// vanished.
	if got := ch.HandoffCount(); got != base+1 {
		t.Errorf("HandoffCount = %d, want %d (+1 merged injected outage)", got, base)
	}

	// No-op call leaves the channel untouched.
	ch.AddOutages(nil)
	if got := ch.HandoffCount(); got != base+1 {
		t.Errorf("HandoffCount after nil AddOutages = %d, want unchanged", got)
	}
}
