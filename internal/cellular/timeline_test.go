package cellular

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/railway"
)

func movingTrip(t *testing.T) railway.Trip { return btrTrip(t) }

// legacyPoint answers the channel state through the span-based methods the
// timeline must replicate bit-for-bit.
func legacyPoint(c *Channel, at time.Duration) TimelinePoint {
	return TimelinePoint{
		InHandoff:    c.InHandoff(at),
		InGap:        c.InGap(at),
		DataLossProb: c.DataLossProb(at),
		AckLossProb:  c.AckLossProb(at),
		ExtraDelay:   c.ExtraDelay(at),
	}
}

func checkPoint(t *testing.T, c *Channel, at time.Duration) {
	t.Helper()
	got, want := c.TimelineAt(at), legacyPoint(c, at)
	if got != want {
		t.Fatalf("TimelineAt(%v) = %+v, legacy %+v", at, got, want)
	}
}

// TestTimelineMatchesLegacyProperty cross-checks TimelineAt against the
// span-based answers at random times, for moving and stationary trips, at
// several trip offsets, before and after AddOutages.
func TestTimelineMatchesLegacyProperty(t *testing.T) {
	trips := map[string]railway.Trip{
		"moving":     movingTrip(t),
		"stationary": stationaryTrip(t),
	}
	for name, trip := range trips {
		for _, off := range []time.Duration{0, 90 * time.Second, 11 * time.Minute, 40 * time.Minute} {
			rng := rand.New(rand.NewSource(42))
			ch, err := NewChannel(ChinaTelecom3G, trip, off, 10*time.Minute, rng)
			if err != nil {
				t.Fatalf("%s off=%v: NewChannel: %v", name, off, err)
			}
			qrng := rand.New(rand.NewSource(7))
			probe := func() {
				for i := 0; i < 4000; i++ {
					at := time.Duration(qrng.Int63n(int64(12 * time.Minute)))
					checkPoint(t, ch, at)
				}
			}
			probe()
			ch.AddOutages([]Outage{
				{Start: 10 * time.Second, End: 12 * time.Second},
				{Start: 11 * time.Second, End: 14 * time.Second}, // overlaps the previous
				{Start: 14 * time.Second, End: 15 * time.Second}, // adjacent: must merge
			})
			probe()
		}
	}
}

// TestTimelineBoundaryQueries hits every compiled span edge exactly, one
// nanosecond before, and one nanosecond after.
func TestTimelineBoundaryQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ch, err := NewChannel(ChinaTelecom3G, movingTrip(t), 2*time.Minute, 8*time.Minute, rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	edges := []time.Duration{0}
	for _, s := range append(append([]span(nil), ch.handoffs...), ch.gaps...) {
		edges = append(edges, s.start, s.end)
	}
	for _, e := range edges {
		for _, at := range []time.Duration{e - time.Nanosecond, e, e + time.Nanosecond} {
			checkPoint(t, ch, at)
		}
	}
}

// TestTimelineAddOutagesRecompiles verifies the timeline is rebuilt after
// AddOutages and that live cursors re-sync via the generation counter.
func TestTimelineAddOutagesRecompiles(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ch, err := NewChannel(ChinaMobileLTE, stationaryTrip(t), 0, 5*time.Minute, rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	if got := ch.Stats().Compiles; got != 1 {
		t.Fatalf("Compiles after construction = %d, want 1", got)
	}
	cursor := ch.DelayCursor()
	at := 30 * time.Second
	if ch.InHandoff(at) {
		t.Fatalf("test premise broken: %v already in outage", at)
	}
	if d := cursor(at); d != 0 {
		t.Fatalf("ExtraDelay before outage = %v, want 0", d)
	}
	ch.AddOutages([]Outage{{Start: 29 * time.Second, End: 31 * time.Second}})
	if got := ch.Stats().Compiles; got != 2 {
		t.Fatalf("Compiles after AddOutages = %d, want 2", got)
	}
	want := ch.ExtraDelay(at)
	if want == 0 {
		t.Fatalf("legacy ExtraDelay inside injected outage = 0")
	}
	// The same cursor (created before the recompile) must see the outage.
	if d := cursor(at); d != want {
		t.Fatalf("cursor after recompile = %v, want %v", d, want)
	}
}

// TestTimelineAdjacentSegmentsMerge checks the compile-time merge: injecting
// an outage adjacent to an existing one must not grow the segment count by
// a full span's worth of boundaries, and the merged timeline still matches.
func TestTimelineAdjacentSegmentsMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ch, err := NewChannel(ChinaMobileLTE, stationaryTrip(t), 0, 5*time.Minute, rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	ch.AddOutages([]Outage{{Start: 10 * time.Second, End: 11 * time.Second}})
	before := len(ch.handoffs)
	segsBefore := ch.TimelineSegments()
	ch.AddOutages([]Outage{{Start: 11 * time.Second, End: 12 * time.Second}})
	if got := len(ch.handoffs); got != before {
		t.Fatalf("adjacent outage did not merge: %d spans, want %d", got, before)
	}
	if got := ch.TimelineSegments(); got != segsBefore {
		t.Fatalf("adjacent outage changed segment count: %d, want %d", got, segsBefore)
	}
	for at := 9 * time.Second; at <= 13*time.Second; at += 100 * time.Millisecond {
		checkPoint(t, ch, at)
	}
}

// TestTimelineCursorMonotoneAndFallback drives the cursors with the real
// access pattern — nondecreasing sent times, jittered arrivals, occasional
// backwards jumps — and asserts bit-identity plus the expected counter
// movement (monotone scans advance, backwards jumps fall back).
func TestTimelineCursorMonotoneAndFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ch, err := NewChannel(ChinaTelecom3G, movingTrip(t), time.Minute, 10*time.Minute, rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	data := ch.DataLossCursor()
	ack := ch.AckLossCursor()
	delay := ch.DelayCursor()

	qrng := rand.New(rand.NewSource(23))
	sent := time.Duration(0)
	for i := 0; i < 20000; i++ {
		sent += time.Duration(qrng.Int63n(int64(40 * time.Millisecond)))
		arrival := sent + time.Duration(qrng.Int63n(int64(300*time.Millisecond))) - 100*time.Millisecond
		if got, want := data(sent, arrival), ch.DataTransitProb(sent, arrival); got != want {
			t.Fatalf("data(%v,%v) = %v, want %v", sent, arrival, got, want)
		}
		if got, want := ack(sent, sent), ch.AckTransitProb(sent, sent); got != want {
			t.Fatalf("ack(%v) = %v, want %v", sent, got, want)
		}
		if got, want := delay(sent), ch.ExtraDelay(sent); got != want {
			t.Fatalf("delay(%v) = %v, want %v", sent, got, want)
		}
		if i%1000 == 999 {
			// Out-of-order probe far behind the cursor: must fall back, not
			// derail subsequent monotone queries.
			back := time.Duration(qrng.Int63n(int64(sent + 1)))
			if got, want := data(back, back), ch.DataTransitProb(back, back); got != want {
				t.Fatalf("out-of-order data(%v) = %v, want %v", back, got, want)
			}
		}
	}
	st := ch.Stats()
	if st.CursorQueries == 0 || st.CursorAdvances == 0 {
		t.Fatalf("cursor counters did not move: %+v", st)
	}
	if st.CursorFallbacks == 0 {
		t.Fatalf("backwards probes recorded no fallbacks: %+v", st)
	}
	if st.Segments == 0 || st.Compiles == 0 {
		t.Fatalf("compile counters empty: %+v", st)
	}
}

// TestTimelineStationaryConstant asserts a stationary channel compiles to a
// constant-speed timeline (every probability precomputed) and still matches
// the legacy path, including inside its micro-outages.
func TestTimelineStationaryConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ch, err := NewChannel(ChinaMobileLTE, stationaryTrip(t), 0, time.Hour, rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	for _, s := range ch.timeline {
		if !s.constSpeed {
			t.Fatalf("stationary segment [%v,%v) not constSpeed", s.start, s.end)
		}
		if s.speedF != 0 {
			t.Fatalf("stationary segment speedF = %v, want 0", s.speedF)
		}
	}
	qrng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		checkPoint(t, ch, time.Duration(qrng.Int63n(int64(time.Hour))))
	}
	for _, h := range ch.handoffs { // micro-outages: probe inside each
		checkPoint(t, ch, h.start)
		checkPoint(t, ch, h.start+(h.end-h.start)/2)
		checkPoint(t, ch, h.end-time.Nanosecond)
	}
}

// TestTimelineNegativeTime pins the t < 0 contract: no outage, no gap, and
// the same speed-term evaluation as the legacy methods.
func TestTimelineNegativeTime(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ch, err := NewChannel(ChinaMobileLTE, movingTrip(t), 5*time.Minute, 5*time.Minute, rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	for _, at := range []time.Duration{-time.Nanosecond, -time.Second, -time.Minute} {
		checkPoint(t, ch, at)
	}
}

// TestTimelineCursorZeroAlloc is the CI gate on the cursor hot path: once a
// flow's cursors exist, per-packet timeline queries — including the binary
// fallback for out-of-order arrivals — allocate nothing.
func TestTimelineCursorZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ch, err := NewChannel(ChinaMobileLTE, movingTrip(t), 2*time.Minute, 10*time.Minute, rng)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	data := ch.DataLossCursor()
	ack := ch.AckLossCursor()
	delay := ch.DelayCursor()
	var at time.Duration
	var sink float64
	avg := testing.AllocsPerRun(1000, func() {
		sink += data(at, at+8*time.Millisecond)
		sink += ack(at+time.Millisecond, at+time.Millisecond)
		sink += float64(delay(at))
		if at > 20*time.Second {
			at -= 15 * time.Second // periodic out-of-order probe: fallback path
		}
		at += 40 * time.Millisecond
	})
	if avg != 0 {
		t.Fatalf("timeline cursor queries allocate %.1f/op, want 0", avg)
	}
	_ = sink
}
