// Package cellular models the radio network between the train and the
// server: per-operator link characteristics, the cell layout along the
// track, handoff outages, speed-dependent residual loss, and coverage gaps.
// Its central type, Channel, converts a railway trip plus an operator
// profile into time-varying loss probabilities and delay inflation that plug
// directly into internal/netem.
//
// The profiles are synthetic stand-ins for the paper's three carriers
// (China Mobile LTE, China Unicom 3G, China Telecom 3G); their parameters
// are tuned so the *transport-layer* statistics the paper reports emerge
// from the simulation: ~0.7% data loss, ~0.66% ACK loss, multi-second
// timeout recovery on the train, and near-zero loss when stationary.
package cellular

import (
	"fmt"
	"time"
)

// Tech is the radio access technology of an operator's network.
type Tech int

// Radio access technologies used in the paper's dataset.
const (
	LTE Tech = iota + 1
	ThreeG
)

// String implements fmt.Stringer.
func (t Tech) String() string {
	switch t {
	case LTE:
		return "LTE"
	case ThreeG:
		return "3G"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// Operator is a synthetic carrier profile. Rates are in bits per second,
// delays are one-way. "Data" refers to the downlink (server -> phone),
// "Ack" to the uplink (phone -> server); the uplink of a phone on a train
// is the weaker direction (limited transmit power), which is what makes ACK
// loss during handoffs more severe than data loss.
type Operator struct {
	Name string
	Tech Tech

	// Link capacity and base latency.
	DownlinkRate float64       // bps
	UplinkRate   float64       // bps
	DownDelay    time.Duration // one-way propagation, downlink
	UpDelay      time.Duration // one-way propagation, uplink
	Jitter       time.Duration // uniform per-packet jitter, both directions
	QueuePackets int           // bottleneck buffer, packets

	// Residual (non-handoff) loss. Base applies always; the speed term adds
	// SpeedLoss * (v/300km/h)^2 to model Doppler-driven fading at speed.
	BaseDataLoss  float64
	BaseAckLoss   float64
	SpeedDataLoss float64
	SpeedAckLoss  float64

	// Handoff behaviour. A handoff fires whenever the train crosses a cell
	// boundary (every CellSpacingKm); it opens an outage window of
	// HandoffMin..HandoffMax. The bearer interruption affects traffic in
	// three distinct ways:
	//
	//   - HandoffDataLoss hits downlink packets that were already in flight
	//     and *arrive* into the outage (partial flush of the old cell's
	//     queue) — the genuine losses that make some timeouts non-spurious;
	//   - HandoffProbeLoss hits downlink packets *sent* while the bearer is
	//     down (the RTO retransmission probes) — what the paper measures as
	//     q, the recovery-phase retransmission loss rate;
	//   - HandoffAckLoss hits uplink ACKs sent while the phone is detached —
	//     the "ACK burst loss" that makes timeouts spurious.
	//
	// Surviving packets are buffered and delivered when the outage ends
	// (delay inflation of up to the remaining outage plus HandoffDelay).
	CellSpacingKm    float64
	HandoffMin       time.Duration
	HandoffMax       time.Duration
	HandoffDataLoss  float64
	HandoffProbeLoss float64
	HandoffAckLoss   float64
	HandoffDelay     time.Duration

	// Coverage gaps: a fraction of the track where the carrier's signal is
	// weak (the paper explains China Telecom's 3G barely covers the
	// Beijing-Tianjin corridor). Inside a gap both directions suffer
	// GapLoss in addition to everything else.
	GapFraction float64
	GapLoss     float64
	GapCount    int
}

// Validate checks that the profile is internally consistent.
func (o Operator) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("cellular: operator name is empty")
	}
	if o.DownlinkRate <= 0 || o.UplinkRate <= 0 {
		return fmt.Errorf("cellular: %s: link rates must be positive", o.Name)
	}
	if o.DownDelay < 0 || o.UpDelay < 0 || o.Jitter < 0 || o.HandoffDelay < 0 {
		return fmt.Errorf("cellular: %s: negative delay", o.Name)
	}
	for _, p := range []float64{
		o.BaseDataLoss, o.BaseAckLoss, o.SpeedDataLoss, o.SpeedAckLoss,
		o.HandoffDataLoss, o.HandoffProbeLoss, o.HandoffAckLoss, o.GapFraction, o.GapLoss,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("cellular: %s: probability %v outside [0,1]", o.Name, p)
		}
	}
	if o.CellSpacingKm <= 0 {
		return fmt.Errorf("cellular: %s: cell spacing must be positive", o.Name)
	}
	if o.HandoffMin < 0 || o.HandoffMax < o.HandoffMin {
		return fmt.Errorf("cellular: %s: handoff window [%v, %v] invalid", o.Name, o.HandoffMin, o.HandoffMax)
	}
	if o.GapFraction > 0 && o.GapCount <= 0 {
		return fmt.Errorf("cellular: %s: GapFraction %v with zero GapCount", o.Name, o.GapFraction)
	}
	return nil
}

// The three carrier profiles of the paper's dataset (Table I). Parameter
// choices are documented in DESIGN.md; they are synthetic but shaped so the
// measured transport statistics land near the paper's.
var (
	// ChinaMobileLTE: the January+October LTE network — fastest links,
	// shortest handoffs.
	ChinaMobileLTE = Operator{
		Name: "China Mobile", Tech: LTE,
		DownlinkRate: 5.5e6, UplinkRate: 2.5e6,
		DownDelay: 22 * time.Millisecond, UpDelay: 22 * time.Millisecond,
		Jitter: 8 * time.Millisecond, QueuePackets: 120,
		BaseDataLoss: 0.0004, BaseAckLoss: 0.0003,
		SpeedDataLoss: 0.0015, SpeedAckLoss: 0.0013,
		CellSpacingKm: 1.0,
		HandoffMin:    3 * time.Second, HandoffMax: 8 * time.Second,
		HandoffDataLoss: 0.14, HandoffProbeLoss: 0.32, HandoffAckLoss: 0.60,
		HandoffDelay: 120 * time.Millisecond,
	}

	// ChinaUnicom3G: October 3G network — slower, longer handoffs.
	ChinaUnicom3G = Operator{
		Name: "China Unicom", Tech: ThreeG,
		DownlinkRate: 7e6, UplinkRate: 2.2e6,
		DownDelay: 30 * time.Millisecond, UpDelay: 30 * time.Millisecond,
		Jitter: 12 * time.Millisecond, QueuePackets: 80,
		BaseDataLoss: 0.0008, BaseAckLoss: 0.0006,
		SpeedDataLoss: 0.0009, SpeedAckLoss: 0.0008,
		CellSpacingKm: 1.2,
		HandoffMin:    3500 * time.Millisecond, HandoffMax: 9 * time.Second,
		HandoffDataLoss: 0.10, HandoffProbeLoss: 0.30, HandoffAckLoss: 0.60,
		HandoffDelay: 200 * time.Millisecond,
	}

	// ChinaTelecom3G: October 3G network with poor coverage along the
	// Beijing-Tianjin corridor (the paper attributes the huge MPTCP gain for
	// Telecom to this).
	ChinaTelecom3G = Operator{
		Name: "China Telecom", Tech: ThreeG,
		DownlinkRate: 5e6, UplinkRate: 1.6e6,
		DownDelay: 35 * time.Millisecond, UpDelay: 35 * time.Millisecond,
		Jitter: 14 * time.Millisecond, QueuePackets: 64,
		BaseDataLoss: 0.0010, BaseAckLoss: 0.0008,
		SpeedDataLoss: 0.0009, SpeedAckLoss: 0.0008,
		CellSpacingKm: 1.1,
		HandoffMin:    4 * time.Second, HandoffMax: 10 * time.Second,
		HandoffDataLoss: 0.08, HandoffProbeLoss: 0.32, HandoffAckLoss: 0.60,
		HandoffDelay: 250 * time.Millisecond,
		GapFraction:  0.22, GapLoss: 0.06, GapCount: 6,
	}
)

// Operators lists the dataset's carriers in the order the paper plots them.
func Operators() []Operator {
	return []Operator{ChinaMobileLTE, ChinaUnicom3G, ChinaTelecom3G}
}
