package cellular

import "time"

// This file holds the compiled channel timeline: the piecewise-constant view
// of the channel that the per-packet hot path queries instead of binary
// searching the handoff and gap span lists on every lookup.
//
// At construction (and again after AddOutages) the channel compiles its
// handoff spans, gap spans, and the trip's speed-phase breakpoints into one
// sorted array of disjoint half-open [start, end) segments covering all of
// flow-local time. Within a segment the handoff/gap membership is constant,
// and — whenever the train speed is constant over the segment (cruise,
// stationary, or past the end of the trip) — the loss probabilities are
// fully precomputed at compile time using the exact same sequence of
// floating-point operations as the span-based DataTransitProb /
// AckTransitProb, so a timeline answer is bit-identical to the legacy one.
// Accel/decel segments only pin the handoff/gap flags and evaluate the
// speed-dependent term per query through the railway.Geometry memo (which is
// itself the single implementation behind Trip.SpeedKmh).
//
// Packets query the timeline in (mostly) nondecreasing virtual time, so
// lookups go through a monotonic cursor: O(1) when the query lands in the
// cached segment, a short forward walk when time moved on, and a
// binary-search fallback for out-of-order queries (jittered arrival times)
// or after a recompile.

// maxSegEnd is the sentinel end of the last segment; no flow-local virtual
// time reaches it.
const maxSegEnd = time.Duration(1<<62 - 1)

// tlSeg is one compiled timeline segment: [start, end) in flow-local time.
type tlSeg struct {
	start, end time.Duration

	inHandoff  bool
	inGap      bool
	constSpeed bool          // speed (hence all probabilities) constant over the segment
	handoffEnd time.Duration // end of the containing handoff span, when inHandoff

	// Precomputed only when constSpeed; accel/decel segments recompute the
	// speed term per query.
	speedF      float64 // (v/300)^2 over the segment
	pDataProbe  float64 // data packet sent while the bearer is down
	pDataArr    float64 // data packet arriving into an outage (sent outside one)
	pDataClean  float64 // data packet with neither endpoint in an outage
	pAckHandoff float64 // ACK sent while the bearer is down
	pAckClean   float64 // ACK sent with the bearer up
}

// negSeg is the virtual segment covering t < 0: no outage, no gap, and the
// speed term evaluated per query (the trip-time offset can still be inside
// the trip for negative flow time). Queries at negative flow time do not
// occur on the packet path; this keeps the cursor total anyway.
var negSeg = tlSeg{start: -maxSegEnd, end: 0}

// ChannelStats counts timeline compilation and cursor behaviour for one
// channel. Fields are plain counters (a channel is consumed by a single
// flow's goroutine) harvested into telemetry after the flow completes.
type ChannelStats struct {
	Segments        int64 // segments in the current compiled timeline
	Compiles        int64 // timeline compilations (1 + one per AddOutages)
	CursorQueries   int64 // total timeline lookups
	CursorAdvances  int64 // lookups resolved by walking forward from the cached segment
	CursorFallbacks int64 // lookups resolved by binary search (out of order or recompile)
}

// Stats returns the channel's timeline counters.
func (c *Channel) Stats() ChannelStats { return c.stats }

// compile rebuilds the timeline from the current handoff and gap span lists.
// Called at construction and from AddOutages; not safe once the flow has
// started consuming the channel (cursors re-sync via the generation counter,
// but the channel itself documents construction-time-only mutation).
func (c *Channel) compile() {
	c.gen++
	c.stats.Compiles++

	bounds := make([]time.Duration, 0, 8+2*len(c.handoffs)+2*len(c.gaps))
	bounds = append(bounds, 0)
	for _, s := range c.handoffs {
		bounds = append(bounds, s.start, s.end)
	}
	for _, s := range c.gaps {
		bounds = append(bounds, s.start, s.end)
	}
	if !c.geo.Stationary() {
		// Speed-phase breakpoints in flow-local time: end of the
		// acceleration ramp, start of the deceleration ramp, and arrival.
		total, ramp := c.geo.Duration(), c.geo.RampTime()
		for _, b := range [3]time.Duration{ramp - c.tripOffset, (total - ramp) - c.tripOffset, total - c.tripOffset} {
			if b > 0 {
				bounds = append(bounds, b)
			}
		}
	}
	sortDurations(bounds)

	segs := make([]tlSeg, 0, len(bounds))
	for i, b := range bounds {
		if b < 0 {
			continue
		}
		if i+1 < len(bounds) && bounds[i+1] == b {
			continue // dedupe
		}
		end := maxSegEnd
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		seg := tlSeg{start: b, end: end}
		if hi := spanBefore(c.handoffs, b); hi >= 0 && c.handoffs[hi].contains(b) {
			seg.inHandoff = true
			seg.handoffEnd = c.handoffs[hi].end
		}
		seg.inGap = inSpans(c.gaps, b)
		c.classifySpeed(&seg)
		if seg.constSpeed {
			c.precomputeProbs(&seg)
		}
		// Merge with the previous segment when nothing observable differs
		// (e.g. a gap edge that falls inside the same handoff phase).
		if n := len(segs); n > 0 && segs[n-1].end == seg.start && sameSegContent(&segs[n-1], &seg) {
			segs[n-1].end = seg.end
			continue
		}
		segs = append(segs, seg)
	}
	c.timeline = segs
	c.stats.Segments = int64(len(segs))
}

// sortDurations is an insertion sort: boundary lists are small (a few
// hundred entries at most) and usually nearly sorted, and avoiding
// sort.Slice keeps compile cheap enough to run per flow.
func sortDurations(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		v := ds[i]
		j := i - 1
		for j >= 0 && ds[j] > v {
			ds[j+1] = ds[j]
			j--
		}
		ds[j+1] = v
	}
}

// sameSegContent reports whether two adjacent segments are observably
// identical and can merge. handoffEnd matters (delay inflation), and
// constSpeed segments must agree on every precomputed value; two adjacent
// non-const segments with equal flags evaluate identically per query.
func sameSegContent(a, b *tlSeg) bool {
	return a.inHandoff == b.inHandoff &&
		a.inGap == b.inGap &&
		a.constSpeed == b.constSpeed &&
		a.handoffEnd == b.handoffEnd &&
		a.speedF == b.speedF
}

// classifySpeed decides whether the train speed is constant over the segment
// and, if so, records the exact speed fraction using the same operations as
// speedFraction.
func (c *Channel) classifySpeed(s *tlSeg) {
	if c.geo.Stationary() {
		s.constSpeed = true
		s.speedF = speedFrac(0)
		return
	}
	total, ramp := c.geo.Duration(), c.geo.RampTime()
	as := c.tripOffset + s.start
	switch {
	case as >= total:
		// Arrived: SpeedKmh is 0 for every at >= total.
		s.constSpeed = true
		s.speedF = speedFrac(0)
	case as >= ramp && s.end != maxSegEnd && c.tripOffset+s.end <= total-ramp:
		// Fully inside the cruise phase.
		s.constSpeed = true
		s.speedF = speedFrac(c.trip.Profile.CruiseKmh)
	default:
		// Accel/decel (or a segment touching t=0 of the trip): evaluate the
		// speed term per query through the geometry memo.
	}
}

// speedFrac mirrors speedFraction's arithmetic exactly: f := v/300; f*f.
func speedFrac(v float64) float64 {
	f := v / 300.0
	return f * f
}

// precomputeProbs fills the segment's loss probabilities, replicating the
// exact floating-point operation order of DataTransitProb/AckTransitProb:
// p := Base + Speed*f, then += the handoff term, then += the gap term, then
// clamp. Associativity is not assumed anywhere — each variant repeats the
// same left-to-right additions the per-packet code performs.
func (c *Channel) precomputeProbs(s *tlSeg) {
	base := c.op.BaseDataLoss + c.op.SpeedDataLoss*s.speedF
	probe := base + c.op.HandoffProbeLoss
	arr := base + c.op.HandoffDataLoss
	clean := base
	if s.inGap {
		probe += c.op.GapLoss
		arr += c.op.GapLoss
		clean += c.op.GapLoss
	}
	s.pDataProbe = clampProb(probe)
	s.pDataArr = clampProb(arr)
	s.pDataClean = clampProb(clean)

	abase := c.op.BaseAckLoss + c.op.SpeedAckLoss*s.speedF
	ah := abase + c.op.HandoffAckLoss
	ac := abase
	if s.inGap {
		ah += c.op.GapLoss
		ac += c.op.GapLoss
	}
	s.pAckHandoff = clampProb(ah)
	s.pAckClean = clampProb(ac)
}

// tlCursor is a monotonic position in the compiled timeline. Each consumer
// of a time series (data-loss sent times, data-loss arrival times, ACK sent
// times, delay lookups) holds its own cursor so the per-direction
// nondecreasing query pattern stays O(1) amortized.
type tlCursor struct {
	c   *Channel
	gen uint64
	idx int
}

// cursorWalkLimit bounds the forward walk before falling back to binary
// search; queries that jump more than a few segments (long idle periods) pay
// one O(log n) search instead of an O(n) scan.
const cursorWalkLimit = 4

// seg resolves the segment containing flow time t.
func (cur *tlCursor) seg(t time.Duration) *tlSeg {
	c := cur.c
	c.stats.CursorQueries++
	if t < 0 {
		return &negSeg
	}
	if cur.gen != c.gen {
		cur.gen = c.gen
		cur.idx = 0
	}
	segs := c.timeline
	i := cur.idx
	s := &segs[i]
	if t >= s.start {
		if t < s.end {
			return s
		}
		for k := 0; k < cursorWalkLimit && i+1 < len(segs); k++ {
			i++
			s = &segs[i]
			if t < s.end {
				c.stats.CursorAdvances++
				cur.idx = i
				return s
			}
		}
	}
	c.stats.CursorFallbacks++
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if segs[mid].start > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cur.idx = lo - 1 // segment 0 starts at 0, so lo >= 1 for t >= 0
	return &segs[cur.idx]
}

// dataProbAt evaluates the downlink transit loss probability given the
// already-resolved sent segment, deferring the arrival lookup to the
// supplied function so the arrival cursor only moves when the legacy code
// would actually have consulted the arrival spans.
func (c *Channel) dataProbAt(ss *tlSeg, sent time.Duration, arrivalSeg func() *tlSeg) float64 {
	if ss.constSpeed {
		if ss.inHandoff {
			return ss.pDataProbe
		}
		if arrivalSeg().inHandoff {
			return ss.pDataArr
		}
		return ss.pDataClean
	}
	p := c.op.BaseDataLoss + c.op.SpeedDataLoss*c.speedFraction(sent)
	switch {
	case ss.inHandoff:
		p += c.op.HandoffProbeLoss
	case arrivalSeg().inHandoff:
		p += c.op.HandoffDataLoss
	}
	if ss.inGap {
		p += c.op.GapLoss
	}
	return clampProb(p)
}

// ackProbAt evaluates the uplink loss probability given the resolved sent
// segment.
func (c *Channel) ackProbAt(ss *tlSeg, sent time.Duration) float64 {
	if ss.constSpeed {
		if ss.inHandoff {
			return ss.pAckHandoff
		}
		return ss.pAckClean
	}
	p := c.op.BaseAckLoss + c.op.SpeedAckLoss*c.speedFraction(sent)
	if ss.inHandoff {
		p += c.op.HandoffAckLoss
	}
	if ss.inGap {
		p += c.op.GapLoss
	}
	return clampProb(p)
}

// extraDelayAt evaluates the delay inflation given the resolved segment.
func (c *Channel) extraDelayAt(s *tlSeg, t time.Duration) time.Duration {
	if s.inHandoff {
		return (s.handoffEnd - t) + c.op.HandoffDelay
	}
	return 0
}

// DataLossCursor returns a cursor-backed equivalent of DataTransitProb for
// one flow direction: bit-identical answers, O(1) amortized lookups. The
// sent and arrival time series each get their own cursor (arrivals jitter,
// so they fall back to binary search occasionally; sent times are
// nondecreasing).
func (c *Channel) DataLossCursor() func(sent, arrival time.Duration) float64 {
	sc := &tlCursor{c: c}
	ac := &tlCursor{c: c}
	return func(sent, arrival time.Duration) float64 {
		return c.dataProbAt(sc.seg(sent), sent, func() *tlSeg { return ac.seg(arrival) })
	}
}

// AckLossCursor returns a cursor-backed equivalent of AckTransitProb.
func (c *Channel) AckLossCursor() func(sent, arrival time.Duration) float64 {
	sc := &tlCursor{c: c}
	return func(sent, _ time.Duration) float64 {
		return c.ackProbAt(sc.seg(sent), sent)
	}
}

// DelayCursor returns a cursor-backed equivalent of ExtraDelay.
func (c *Channel) DelayCursor() func(t time.Duration) time.Duration {
	cur := &tlCursor{c: c}
	return func(t time.Duration) time.Duration {
		return c.extraDelayAt(cur.seg(t), t)
	}
}

// TimelinePoint is the channel state at one instant, as answered by the
// compiled timeline. DataLossProb/AckLossProb take the single-epoch view
// (sent == arrival), matching Channel.DataLossProb/AckLossProb.
type TimelinePoint struct {
	InHandoff    bool
	InGap        bool
	DataLossProb float64
	AckLossProb  float64
	ExtraDelay   time.Duration
}

// TimelineAt answers the channel state at flow time t from the compiled
// timeline with a stateless binary search (no cursor). It is the
// inspection/verification surface: TimelineAt(t) must agree exactly with
// the legacy span-based InHandoff/InGap/DataLossProb/AckLossProb/ExtraDelay
// for every t, which the property and fuzz tests assert.
func (c *Channel) TimelineAt(t time.Duration) TimelinePoint {
	cur := tlCursor{c: c, gen: c.gen}
	s := cur.seg(t)
	return TimelinePoint{
		InHandoff:    s.inHandoff && t >= 0,
		InGap:        s.inGap && t >= 0,
		DataLossProb: c.dataProbAt(s, t, func() *tlSeg { return s }),
		AckLossProb:  c.ackProbAt(s, t),
		ExtraDelay:   c.extraDelayAt(s, t),
	}
}

// TimelineSegments returns the number of segments in the compiled timeline.
func (c *Channel) TimelineSegments() int { return len(c.timeline) }
