package cellular

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/railway"
)

// FuzzChannelTimeline is the differential target for the compiled timeline:
// it builds a channel from fuzzed parameters, optionally injects fuzzed
// outages mid-stream, and drives the cursor-backed lookups with a mixed
// monotone/out-of-order query schedule, asserting every answer is
// bit-identical (exact float64 equality, not approximate) to the legacy
// span-based methods. Run in CI's fuzz smoke step.
func FuzzChannelTimeline(f *testing.F) {
	f.Add(int64(1), uint16(60), uint32(0), false, uint64(0x9e3779b97f4a7c15))
	f.Add(int64(7), uint16(300), uint32(90), true, uint64(0xdeadbeefcafef00d))
	f.Add(int64(42), uint16(600), uint32(2400), false, uint64(3))
	f.Add(int64(-5), uint16(45), uint32(0), true, uint64(1<<63))

	f.Fuzz(func(t *testing.T, seed int64, horizonSec uint16, offsetSec uint32, stationary bool, qseed uint64) {
		profile := railway.DefaultProfile
		if stationary {
			profile = railway.StationaryProfile
		}
		trip, err := railway.NewTrip(railway.BeijingTianjin, profile)
		if err != nil {
			t.Fatalf("NewTrip: %v", err)
		}
		horizon := time.Duration(horizonSec%1800+1) * time.Second
		offset := time.Duration(offsetSec%3600) * time.Second
		ops := Operators()
		op := ops[int(uint64(seed)%uint64(len(ops)))]
		ch, err := NewChannel(op, trip, offset, horizon, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("NewChannel: %v", err)
		}

		qrng := rand.New(rand.NewSource(int64(qseed)))
		data := ch.DataLossCursor()
		ack := ch.AckLossCursor()
		delay := ch.DelayCursor()

		span := int64(horizon) + int64(time.Minute)
		sent := time.Duration(0)
		check := func(sent, arrival time.Duration) {
			if got, want := data(sent, arrival), ch.DataTransitProb(sent, arrival); got != want {
				t.Fatalf("data(%v,%v): cursor %v != legacy %v", sent, arrival, got, want)
			}
			if got, want := ack(sent, arrival), ch.AckTransitProb(sent, arrival); got != want {
				t.Fatalf("ack(%v): cursor %v != legacy %v", sent, got, want)
			}
			if got, want := delay(sent), ch.ExtraDelay(sent); got != want {
				t.Fatalf("delay(%v): cursor %v != legacy %v", sent, got, want)
			}
			if got, want := ch.TimelineAt(sent), legacyPointF(ch, sent); got != want {
				t.Fatalf("TimelineAt(%v) = %+v, legacy %+v", sent, got, want)
			}
		}
		for i := 0; i < 600; i++ {
			switch qrng.Intn(10) {
			case 0: // out-of-order jump anywhere, including before the cursor
				at := time.Duration(qrng.Int63n(span))
				check(at, at+time.Duration(qrng.Int63n(int64(time.Second))))
			case 1: // recompile mid-stream: cursors must re-sync
				start := time.Duration(qrng.Int63n(span))
				ch.AddOutages([]Outage{{Start: start, End: start + time.Duration(qrng.Int63n(int64(3*time.Second))+1)}})
				check(sent, sent)
			default: // the packet path: nondecreasing sends, jittered arrivals
				sent += time.Duration(qrng.Int63n(int64(80 * time.Millisecond)))
				arrival := sent + time.Duration(qrng.Int63n(int64(400*time.Millisecond))) - 150*time.Millisecond
				check(sent, arrival)
			}
		}
	})
}

// legacyPointF mirrors legacyPoint for the fuzz target (kept separate so
// the fuzz file stands alone when run with -run xxx -fuzz).
func legacyPointF(c *Channel, at time.Duration) TimelinePoint {
	return TimelinePoint{
		InHandoff:    c.InHandoff(at),
		InGap:        c.InGap(at),
		DataLossProb: c.DataLossProb(at),
		AckLossProb:  c.AckLossProb(at),
		ExtraDelay:   c.ExtraDelay(at),
	}
}
