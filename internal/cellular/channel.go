package cellular

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/railway"
)

// span is a half-open virtual-time interval [start, end).
type span struct {
	start, end time.Duration
}

func (s span) contains(t time.Duration) bool { return t >= s.start && t < s.end }

// Channel is the time-varying radio channel seen by one flow: given the
// operator profile, the trip, and the offset of the flow's start within the
// trip, it precomputes the handoff outages and coverage-gap windows the flow
// will traverse and exposes loss probabilities and delay inflation as
// functions of flow-local virtual time.
//
// All randomness (handoff durations, gap placement) is drawn once at
// construction from the supplied rng, so a Channel is deterministic
// afterwards and can be shared by both directions of a path.
type Channel struct {
	op         Operator
	trip       railway.Trip
	geo        railway.Geometry // trip kinematics compiled once (bit-identical to trip methods)
	tripOffset time.Duration

	handoffs []span // flow-local time, sorted
	gaps     []span // flow-local time, sorted

	timeline []tlSeg // compiled piecewise-constant view of the spans above
	gen      uint64  // bumped on every compile; cursors re-sync on mismatch
	stats    ChannelStats
}

// NewChannel builds the channel for a flow starting at tripOffset into trip.
// The horizon parameter bounds how much flow time is precomputed; flows must
// not run past it.
func NewChannel(op Operator, trip railway.Trip, tripOffset, horizon time.Duration, rng *rand.Rand) (*Channel, error) {
	if err := op.Validate(); err != nil {
		return nil, err
	}
	if tripOffset < 0 || horizon <= 0 {
		return nil, fmt.Errorf("cellular: invalid tripOffset %v or horizon %v", tripOffset, horizon)
	}
	c := &Channel{op: op, trip: trip, geo: trip.Geometry(), tripOffset: tripOffset}
	if trip.Stationary() {
		// Even a stationary phone occasionally loses the channel for a few
		// hundred milliseconds (interference, cell congestion transients).
		// These rare micro-outages are what give stationary flows their
		// occasional — and quickly recovered — timeouts, the paper's 0.65 s
		// baseline against the 5.05 s HSR recoveries.
		c.handoffs = mergeSpans(c.computeStationaryOutages(horizon, rng))
	} else {
		c.handoffs = mergeSpans(c.computeHandoffs(horizon, rng))
		c.gaps = mergeSpans(c.computeGaps(horizon, rng))
	}
	c.compile()
	return c, nil
}

// Stationary micro-outage process: one outage every stationaryOutageGap on
// average (exponentially distributed), each lasting between
// stationaryOutageMin and stationaryOutageMax.
const (
	stationaryOutageGap = 250 * time.Second
	stationaryOutageMin = 150 * time.Millisecond
	stationaryOutageMax = 400 * time.Millisecond
)

func (c *Channel) computeStationaryOutages(horizon time.Duration, rng *rand.Rand) []span {
	var out []span
	at := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(stationaryOutageGap))
		at += gap
		if at > horizon {
			return out
		}
		dur := stationaryOutageMin +
			time.Duration(rng.Int63n(int64(stationaryOutageMax-stationaryOutageMin)))
		out = append(out, span{start: at, end: at + dur})
		at += dur
	}
}

// mergeSpans sorts spans by start and merges overlapping or touching ones,
// so lookups can binary-search a disjoint list.
func mergeSpans(spans []span) []span {
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.start <= last.end {
			if s.end > last.end {
				last.end = s.end
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// computeHandoffs walks the trip from the flow's start and opens an outage
// window at every cell-boundary crossing.
func (c *Channel) computeHandoffs(horizon time.Duration, rng *rand.Rand) []span {
	const step = 50 * time.Millisecond
	var out []span
	prevCell := c.cellIndex(c.geo.PositionKm(c.tripOffset))
	for ft := step; ft <= horizon; ft += step {
		cell := c.cellIndex(c.geo.PositionKm(c.tripOffset + ft))
		if cell != prevCell {
			dur := c.op.HandoffMin
			if c.op.HandoffMax > c.op.HandoffMin {
				dur += time.Duration(rng.Int63n(int64(c.op.HandoffMax - c.op.HandoffMin)))
			}
			out = append(out, span{start: ft, end: ft + dur})
			prevCell = cell
		}
	}
	return out
}

// computeGaps places the operator's coverage gaps along the track (by
// position, deterministically seeded) and converts the ones the flow
// traverses into flow-local time windows.
func (c *Channel) computeGaps(horizon time.Duration, rng *rand.Rand) []span {
	if c.op.GapFraction <= 0 || c.op.GapCount <= 0 {
		return nil
	}
	trackLen := c.trip.Track.LengthKm
	gapLen := trackLen * c.op.GapFraction / float64(c.op.GapCount)
	// Place gap starts uniformly; overlaps are acceptable (they just merge
	// into a longer bad stretch).
	type posSpan struct{ startKm, endKm float64 }
	posGaps := make([]posSpan, 0, c.op.GapCount)
	for i := 0; i < c.op.GapCount; i++ {
		start := rng.Float64() * (trackLen - gapLen)
		posGaps = append(posGaps, posSpan{startKm: start, endKm: start + gapLen})
	}
	sort.Slice(posGaps, func(i, j int) bool { return posGaps[i].startKm < posGaps[j].startKm })

	// Convert position spans to flow-time spans by scanning the trip.
	const step = 50 * time.Millisecond
	inGap := func(km float64) bool {
		for _, g := range posGaps {
			if km >= g.startKm && km < g.endKm {
				return true
			}
		}
		return false
	}
	var out []span
	open := false
	var openAt time.Duration
	for ft := time.Duration(0); ft <= horizon; ft += step {
		g := inGap(c.geo.PositionKm(c.tripOffset + ft))
		switch {
		case g && !open:
			open, openAt = true, ft
		case !g && open:
			out = append(out, span{start: openAt, end: ft})
			open = false
		}
	}
	if open {
		out = append(out, span{start: openAt, end: horizon + step})
	}
	return out
}

// cellIndex maps a track position to the serving cell number.
func (c *Channel) cellIndex(km float64) int {
	return int(km / c.op.CellSpacingKm)
}

// speedFraction returns (v / 300 km/h)^2 at the given flow time, the scale
// factor for Doppler-driven residual loss.
func (c *Channel) speedFraction(flowTime time.Duration) float64 {
	v := c.geo.SpeedKmh(c.tripOffset + flowTime)
	f := v / 300.0
	return f * f
}

// Outage is an externally injected bearer outage window in flow-local time
// (half-open: [Start, End)). The fault-injection layer uses it to intensify
// a channel with handoff storms beyond what the operator profile produces.
type Outage struct {
	Start, End time.Duration
}

// AddOutages merges extra bearer outages into the channel's handoff
// windows. Injected outages carry the full semantics of real handoffs —
// probe loss for packets sent while the bearer is down, ACK loss, data
// loss on arrival into the outage, and delay inflation until the outage
// ends — so fault-injected campaigns stress exactly the mechanisms the
// paper measures. Windows with End <= Start are ignored. AddOutages must be
// called before the flow starts consuming the channel; it is not safe to
// mutate a channel mid-simulation.
func (c *Channel) AddOutages(outages []Outage) {
	if len(outages) == 0 {
		return
	}
	spans := append([]span(nil), c.handoffs...)
	for _, o := range outages {
		if o.End > o.Start && o.Start >= 0 {
			spans = append(spans, span{start: o.Start, end: o.End})
		}
	}
	c.handoffs = mergeSpans(spans)
	c.compile()
}

// InHandoff reports whether flow time t falls inside a handoff outage.
func (c *Channel) InHandoff(t time.Duration) bool { return inSpans(c.handoffs, t) }

// InGap reports whether flow time t falls inside a coverage gap.
func (c *Channel) InGap(t time.Duration) bool { return inSpans(c.gaps, t) }

// spanBefore returns the index of the last span starting at or before t, or
// -1. It is an open-coded binary search: the per-packet loss and delay
// lookups call it several times per packet, and sort.Search's func argument
// would put a closure construction on that hot path.
func spanBefore(spans []span, t time.Duration) int {
	lo, hi := 0, len(spans)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if spans[mid].start > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo - 1
}

// inSpans reports whether t falls inside any of the disjoint, sorted spans.
func inSpans(spans []span, t time.Duration) bool {
	i := spanBefore(spans, t)
	return i >= 0 && spans[i].contains(t)
}

// HandoffCount returns the number of handoffs within the precomputed horizon.
func (c *Channel) HandoffCount() int { return len(c.handoffs) }

// DataLossProb returns the downlink (data) loss probability for a packet
// whose whole transit happens at flow time t. It is the single-epoch view
// of DataTransitProb, kept for channel inspection and plotting.
func (c *Channel) DataLossProb(t time.Duration) float64 {
	return c.DataTransitProb(t, t)
}

// DataTransitProb returns the downlink loss probability for a packet sent
// at flow time sent and arriving at flow time arrival. A packet sent while
// the bearer is down is a retransmission probe and faces HandoffProbeLoss;
// one that was already in flight and arrives into the outage faces
// HandoffDataLoss (partial flush of the old cell's queue).
func (c *Channel) DataTransitProb(sent, arrival time.Duration) float64 {
	p := c.op.BaseDataLoss + c.op.SpeedDataLoss*c.speedFraction(sent)
	switch {
	case c.InHandoff(sent):
		p += c.op.HandoffProbeLoss
	case c.InHandoff(arrival):
		p += c.op.HandoffDataLoss
	}
	if c.InGap(sent) {
		p += c.op.GapLoss
	}
	return clampProb(p)
}

// AckLossProb returns the uplink (ACK) loss probability at flow time t —
// the single-epoch view of AckTransitProb.
func (c *Channel) AckLossProb(t time.Duration) float64 {
	return c.AckTransitProb(t, t)
}

// AckTransitProb returns the uplink loss probability for an ACK sent at
// flow time sent. The radio segment sits at the start of an ACK's journey
// (the phone), so only the sent epoch matters.
func (c *Channel) AckTransitProb(sent, _ time.Duration) float64 {
	p := c.op.BaseAckLoss + c.op.SpeedAckLoss*c.speedFraction(sent)
	if c.InHandoff(sent) {
		p += c.op.HandoffAckLoss
	}
	if c.InGap(sent) {
		p += c.op.GapLoss
	}
	return clampProb(p)
}

// ExtraDelay returns the one-way delay inflation at flow time t. During a
// handoff the radio bearer is interrupted and the link layer buffers
// traffic: a packet entering the link mid-outage is held until the outage
// ends (plus the handoff signalling cost). This buffering is what turns
// handoffs into spurious retransmission timeouts — the original packets are
// not lost, they arrive after the sender's RTO has already fired.
func (c *Channel) ExtraDelay(t time.Duration) time.Duration {
	if rem := c.handoffRemaining(t); rem > 0 {
		return rem + c.op.HandoffDelay
	}
	return 0
}

// handoffRemaining returns how much of the surrounding handoff outage is
// left at flow time t, or 0 when t is outside any outage.
func (c *Channel) handoffRemaining(t time.Duration) time.Duration {
	if i := spanBefore(c.handoffs, t); i >= 0 && c.handoffs[i].contains(t) {
		return c.handoffs[i].end - t
	}
	return 0
}

// Operator returns the profile this channel was built from.
func (c *Channel) Operator() Operator { return c.op }

func clampProb(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}
