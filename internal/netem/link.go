package netem

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// DropKind classifies why the link dropped a packet.
type DropKind int

// Drop causes.
const (
	// DropChannel is a random radio-channel loss decided by the LossModel.
	DropChannel DropKind = iota + 1
	// DropQueue is a tail drop: the serialization queue exceeded its limit.
	DropQueue
)

// minRateScale floors RateScale values: even a fully collapsed link keeps a
// trickle of capacity so serialization times stay finite.
const minRateScale = 1e-6

// String implements fmt.Stringer.
func (k DropKind) String() string {
	switch k {
	case DropChannel:
		return "channel"
	case DropQueue:
		return "queue"
	default:
		return fmt.Sprintf("DropKind(%d)", int(k))
	}
}

// LinkStats counts the fate of packets offered to a link.
type LinkStats struct {
	Offered      int // packets handed to Send
	Delivered    int // packets whose deliver callback fired
	ChannelDrops int // random channel losses
	QueueDrops   int // serialization-queue tail drops
	// PeakBacklog is the largest serialization backlog (packets ahead of an
	// arriving one, including the one in service) observed on a
	// bounded-queue link; always 0 on unbounded or infinitely fast links.
	PeakBacklog int
	// VectorBursts counts BeginBurstN submissions whose admission, delay and
	// loss outcomes were sampled in one vectorized pass; VectorPackets counts
	// the packets primed that way.
	VectorBursts  int
	VectorPackets int
}

// LossRate returns the fraction of offered packets that were dropped for any
// reason, or 0 if nothing was offered.
func (s LinkStats) LossRate() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Offered-s.Delivered) / float64(s.Offered)
}

// LinkConfig describes one unidirectional link.
type LinkConfig struct {
	// Rate is the line rate in bits per second; 0 means infinitely fast
	// (no serialization delay, no queue).
	Rate float64
	// RateScale, when non-nil, multiplies Rate by its value at each packet's
	// entry epoch — the hook time-varying capacity (fault-injected rate
	// collapses, congestion episodes) plugs into. Values are floored at a
	// tiny positive minimum so a collapsed link trickles (and tail-drops via
	// MaxQueue) rather than dividing by zero. Ignored when Rate is 0.
	RateScale func(now time.Duration) float64
	// MaxQueue bounds the serialization backlog in packets; packets arriving
	// with MaxQueue packets already waiting are tail-dropped. Ignored when
	// Rate is 0. A zero MaxQueue means an unbounded queue.
	MaxQueue int
	// Delay samples per-packet propagation delay. Required.
	Delay DelayModel
	// Loss decides random channel drops. Defaults to NoLoss.
	Loss LossModel
}

// Handler is the delivery callback interface of the emulated links; it is
// sim.Handler re-exported so netem callers need not import sim. Hot paths
// implement it on pooled structs; cold paths and tests can wrap a closure
// with HandlerFunc.
type Handler = sim.Handler

// HandlerFunc adapts a plain func to a Handler. The conversion allocates
// once per wrapped closure, so it is for cold paths and tests; per-packet
// paths should pool handler structs instead.
type HandlerFunc func()

// Fire implements Handler.
func (f HandlerFunc) Fire() { f() }

// Link is a unidirectional, loss- and delay-emulating packet pipe driven by
// a Simulator. Deliveries never reorder: a packet's delivery time is clamped
// to be at least the previous packet's delivery time, modeling the in-order
// radio bearer of cellular networks (the paper's traces show no transport-
// visible reordering; TCP's dup-ACK machinery would otherwise conflate
// reordering with loss).
type Link struct {
	simulator *sim.Simulator
	cfg       LinkConfig
	stats     LinkStats

	nextFree     time.Duration // when the serializer becomes idle
	lastDelivery time.Duration // monotone delivery horizon (no reordering)
	free         *linkEvent    // pooled in-flight delivery events

	scratch     []burstOutcome // reused vectorized-burst outcome buffer
	scratchLive int            // primed outcomes not yet consumed by Send
}

// burstOutcome is the precomputed fate of one packet of a vectorized burst:
// its drop verdict and, for survivors, the pre-FIFO-clamp arrival epoch.
type burstOutcome struct {
	arrival time.Duration
	kind    DropKind // 0 = delivered
}

// linkEvent is the pooled in-flight state of one packet: it bumps the
// delivered counter and hands off to the caller's handler when the emulated
// arrival time comes.
type linkEvent struct {
	l       *Link
	deliver Handler
	next    *linkEvent
}

// Fire implements sim.Handler.
func (e *linkEvent) Fire() {
	l, deliver := e.l, e.deliver
	e.deliver = nil
	e.next = l.free
	l.free = e
	l.stats.Delivered++
	deliver.Fire()
}

// NewLink builds a link on top of the given simulator.
func NewLink(simulator *sim.Simulator, cfg LinkConfig) *Link {
	if simulator == nil {
		panic("netem: NewLink with nil simulator")
	}
	if cfg.Delay == nil {
		panic("netem: LinkConfig.Delay is required")
	}
	if cfg.Rate < 0 {
		panic(fmt.Sprintf("netem: negative link rate %v", cfg.Rate))
	}
	if cfg.Loss == nil {
		cfg.Loss = NoLoss{}
	}
	return &Link{simulator: simulator, cfg: cfg}
}

// Stats returns a copy of the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueDepth returns the current serialization backlog in seconds of
// transmission time (0 when the line is idle or infinitely fast).
func (l *Link) QueueDepth() time.Duration {
	now := l.simulator.Now()
	if l.nextFree <= now {
		return 0
	}
	return l.nextFree - now
}

// Send offers a packet of size bytes to the link. If the packet survives the
// queue and the channel, deliver is scheduled at the emulated arrival time
// and Send returns (delivered-eventually=true, 0). Otherwise deliver is
// never called and Send reports the drop cause. The caller observes drops
// synchronously, which the trace recorder uses to log ground-truth losses.
func (l *Link) Send(size int, deliver Handler) (bool, DropKind) {
	b := l.BeginBurst(size)
	return b.Send(deliver)
}

// Burst is a batched submission handle: it amortizes the per-packet
// admission arithmetic of Send — the clock read and the (possibly
// fault-scaled) serialization time — across a run of same-size packets
// offered at a single virtual instant, the shape the TCP sender's window
// fill produces. Everything statefully per-packet (queue admission, delay
// sampling, channel loss draws, FIFO clamping, delivery scheduling) still
// happens per Send in submission order, so a burst of n packets is
// byte-identical to n plain Sends. A Burst is only valid at the instant it
// was begun; Send panics if virtual time has moved on.
type Burst struct {
	l      *Link
	now    time.Duration
	size   int
	txTime time.Duration // resolved on first Send; 0 while unresolved or rate-unlimited

	outcomes []burstOutcome // primed by BeginBurstN; nil on the scalar path
	i        int            // next primed outcome to consume
}

// BeginBurst starts a batched submission of size-byte packets at the current
// virtual time. The serialization time is resolved lazily on the first Send,
// so beginning a burst that submits nothing costs two field reads.
func (l *Link) BeginBurst(size int) Burst {
	if size <= 0 {
		panic(fmt.Sprintf("netem: Send with non-positive size %d", size))
	}
	if l.scratchLive != 0 {
		panic(fmt.Sprintf("netem: new burst begun with %d primed packets unconsumed", l.scratchLive))
	}
	return Burst{l: l, now: l.simulator.Now(), size: size}
}

// BeginBurstN starts a burst whose packet count is known up front and
// samples every packet's fate — queue admission, propagation delay, channel
// loss — in one vectorized pass over a link-owned scratch buffer. The pass
// replicates the scalar Send sequence exactly, packet by packet in
// submission order (queue-dropped packets consume no RNG draws, survivors
// draw delay then loss), so the RNG stream and every outcome are
// bit-identical to n plain Sends; the differential fuzz target
// FuzzBurstSampling proves it.
//
// Contract: the caller must invoke Send exactly n times before beginning
// the next burst on this link. The serializer and RNG state advance during
// priming, so consuming fewer (or attempting more) would diverge from the
// scalar path; both are detected and panic.
func (l *Link) BeginBurstN(size, n int) Burst {
	b := l.BeginBurst(size)
	if n <= 0 {
		return b
	}
	if cap(l.scratch) < n {
		l.scratch = make([]burstOutcome, n)
	}
	out := l.scratch[:n]
	now := b.now

	rateLimited := l.cfg.Rate > 0
	var txTime time.Duration
	if rateLimited {
		// Same effective-rate resolution the scalar path performs on the
		// first Send: RateScale is a pure function of virtual time, so one
		// evaluation serves the whole burst.
		rate := l.cfg.Rate
		if l.cfg.RateScale != nil {
			f := l.cfg.RateScale(now)
			if f < minRateScale {
				f = minRateScale
			}
			rate *= f
		}
		txTime = time.Duration(float64(size*8) / rate * float64(time.Second))
		if txTime <= 0 {
			txTime = time.Nanosecond
		}
		b.txTime = txTime
	}

	delay, loss := l.cfg.Delay, l.cfg.Loss
	nextFree := l.nextFree
	maxQueue := l.cfg.MaxQueue
	peak := l.stats.PeakBacklog
	for i := range out {
		departure := now
		if rateLimited {
			start := now
			if nextFree > start {
				start = nextFree
			}
			if maxQueue > 0 {
				backlog := int((start - now) / txTime)
				if backlog > peak {
					peak = backlog
				}
				if backlog > maxQueue {
					// Tail drop before the channel: no delay or loss draw,
					// exactly like the scalar path's early return.
					out[i] = burstOutcome{kind: DropQueue}
					continue
				}
			}
			departure = start + txTime
			nextFree = departure
		}
		arrival := departure + delay.Sample(now)
		if loss.Drop(now, arrival) {
			out[i] = burstOutcome{kind: DropChannel}
			continue
		}
		out[i] = burstOutcome{arrival: arrival}
	}
	l.nextFree = nextFree
	l.stats.PeakBacklog = peak
	l.stats.VectorBursts++
	l.stats.VectorPackets += n
	l.scratchLive = n
	b.outcomes = out
	return b
}

// Send offers one packet of the burst; semantics match Link.Send. On a
// vectorized burst it consumes the next precomputed outcome; only the FIFO
// delivery clamp and event scheduling remain per packet.
func (b *Burst) Send(deliver Handler) (bool, DropKind) {
	if deliver == nil {
		panic("netem: Send with nil deliver callback")
	}
	l := b.l
	now := b.now
	if l.simulator.Now() != now {
		panic(fmt.Sprintf("netem: Burst begun at %v used at %v", now, l.simulator.Now()))
	}
	if b.outcomes != nil {
		if b.i >= len(b.outcomes) {
			panic(fmt.Sprintf("netem: vectorized burst of %d overconsumed", len(b.outcomes)))
		}
		o := b.outcomes[b.i]
		b.i++
		l.scratchLive--
		l.stats.Offered++
		switch o.kind {
		case DropQueue:
			l.stats.QueueDrops++
			return false, DropQueue
		case DropChannel:
			l.stats.ChannelDrops++
			return false, DropChannel
		}
		arrival := o.arrival
		if arrival < l.lastDelivery {
			arrival = l.lastDelivery // preserve FIFO delivery
		}
		l.lastDelivery = arrival
		ev := l.free
		if ev == nil {
			ev = &linkEvent{l: l}
		} else {
			l.free = ev.next
			ev.next = nil
		}
		ev.deliver = deliver
		l.simulator.AtFire(arrival, ev)
		return true, 0
	}
	l.stats.Offered++

	departure := now
	if l.cfg.Rate > 0 {
		txTime := b.txTime
		if txTime == 0 {
			// First packet of the burst: resolve the effective line rate at
			// this instant. RateScale is a pure function of virtual time, so
			// one evaluation serves the whole burst.
			rate := l.cfg.Rate
			if l.cfg.RateScale != nil {
				f := l.cfg.RateScale(now)
				if f < minRateScale {
					f = minRateScale
				}
				rate *= f
			}
			txTime = time.Duration(float64(b.size*8) / rate * float64(time.Second))
			if txTime <= 0 {
				txTime = time.Nanosecond
			}
			b.txTime = txTime
		}
		start := now
		if l.nextFree > start {
			start = l.nextFree
		}
		if l.cfg.MaxQueue > 0 {
			// backlog counts packets ahead of this one (including the one in
			// service); only the waiting ones occupy queue slots.
			backlog := int((start - now) / txTime)
			if backlog > l.stats.PeakBacklog {
				l.stats.PeakBacklog = backlog
			}
			if backlog > l.cfg.MaxQueue {
				l.stats.QueueDrops++
				return false, DropQueue
			}
		}
		departure = start + txTime
		l.nextFree = departure
	}

	// The arrival epoch (before FIFO clamping) is computed first so the loss
	// model can expose the packet to the channel conditions of both transit
	// ends; the model is consulted once per packet so burst-state evolution
	// stays per-packet.
	arrival := departure + l.cfg.Delay.Sample(now)
	if l.cfg.Loss.Drop(now, arrival) {
		l.stats.ChannelDrops++
		return false, DropChannel
	}
	if arrival < l.lastDelivery {
		arrival = l.lastDelivery // preserve FIFO delivery
	}
	l.lastDelivery = arrival
	ev := l.free
	if ev == nil {
		ev = &linkEvent{l: l}
	} else {
		l.free = ev.next
		ev.next = nil
	}
	ev.deliver = deliver
	l.simulator.AtFire(arrival, ev)
	return true, 0
}

// Sender is the one-way packet interface endpoints transmit into: a Link,
// or a Chain of stages.
type Sender interface {
	// Send offers a packet; deliver fires at the emulated arrival time
	// unless the packet is dropped, in which case Send reports the cause
	// and deliver never fires (the caller may recycle it immediately).
	// Drops in stages past the first of a Chain are reported as delivered
	// (the verdict of later stages is not knowable synchronously); such
	// packets simply never arrive.
	Send(size int, deliver Handler) (bool, DropKind)
}

var (
	_ Sender = (*Link)(nil)
	_ Sender = (*Chain)(nil)
)

// Chain runs a packet through several stages in order: each stage's
// emulated arrival feeds the next stage's Send. Use it to separate a shared
// capacity stage (the cell's air interface serving several subflows) from
// per-subflow loss and delay.
type Chain struct {
	Stages []Sender

	free *chainEvent // pooled stage-handoff events
}

// chainEvent carries a packet from one chain stage's delivery into the next
// stage's Send; pooled on the Chain so multi-stage paths stay allocation-
// free per packet.
type chainEvent struct {
	c       *Chain
	stage   int
	size    int
	deliver Handler
	next    *chainEvent
}

// Fire implements Handler.
func (e *chainEvent) Fire() {
	c, stage, size, deliver := e.c, e.stage, e.size, e.deliver
	e.deliver = nil
	e.next = c.free
	c.free = e
	c.sendFrom(stage, size, deliver)
}

// NewChain builds a chain of at least one stage.
func NewChain(stages ...Sender) *Chain {
	if len(stages) == 0 {
		panic("netem: NewChain requires at least one stage")
	}
	for _, s := range stages {
		if s == nil {
			panic("netem: NewChain with nil stage")
		}
	}
	return &Chain{Stages: stages}
}

// Send implements Sender. Only the first stage's verdict is synchronous;
// later stages drop silently (their deliver callback never fires).
func (c *Chain) Send(size int, deliver Handler) (bool, DropKind) {
	return c.sendFrom(0, size, deliver)
}

func (c *Chain) sendFrom(stage int, size int, deliver Handler) (bool, DropKind) {
	if stage == len(c.Stages)-1 {
		return c.Stages[stage].Send(size, deliver)
	}
	ev := c.free
	if ev == nil {
		ev = &chainEvent{c: c}
	} else {
		c.free = ev.next
		ev.next = nil
	}
	ev.stage, ev.size, ev.deliver = stage+1, size, deliver
	ok, kind := c.Stages[stage].Send(size, ev)
	if !ok {
		ev.deliver = nil
		ev.next = c.free
		c.free = ev
	}
	return ok, kind
}

// Path bundles the two directions of a bidirectional connection: Forward
// carries data (server -> phone downlink in the paper's setup) and Reverse
// carries ACKs (uplink).
type Path struct {
	Forward Sender
	Reverse Sender
}

// NewPath wires two senders into a path.
func NewPath(forward, reverse Sender) *Path {
	if forward == nil || reverse == nil {
		panic("netem: NewPath requires both directions")
	}
	return &Path{Forward: forward, Reverse: reverse}
}
