package netem

import (
	"fmt"
	"math/rand"
	"time"
)

// DelayModel samples the one-way propagation delay for a packet entering the
// link at virtual time now (serialization time is handled separately by the
// Link's rate limiter).
//
// Contract: Sample is invoked exactly once per packet that reaches the
// channel (queue tail drops never sample), in submission order, with the
// packet's entry epoch as now. Time-invariant models may ignore now, but
// models that consume randomness must draw the same RNG sequence regardless
// of its value — the vectorized burst path (Link.BeginBurstN) replays the
// per-packet call sequence verbatim and the FuzzBurstSampling differential
// target asserts draw-order stability against the scalar path.
type DelayModel interface {
	Sample(now time.Duration) time.Duration
}

// FixedDelay returns the same delay for every packet.
type FixedDelay time.Duration

// Sample implements DelayModel.
func (d FixedDelay) Sample(time.Duration) time.Duration { return time.Duration(d) }

// UniformDelay samples Base + U(0, Jitter).
type UniformDelay struct {
	Base   time.Duration
	Jitter time.Duration
	rng    *rand.Rand
}

// NewUniformDelay builds a uniform-jitter delay model. Base and Jitter must
// be non-negative.
func NewUniformDelay(base, jitter time.Duration, rng *rand.Rand) *UniformDelay {
	if base < 0 || jitter < 0 {
		panic(fmt.Sprintf("netem: UniformDelay base %v jitter %v must be non-negative", base, jitter))
	}
	return &UniformDelay{Base: base, Jitter: jitter, rng: rng}
}

// Sample implements DelayModel. It ignores now by design: the jitter
// distribution is time-invariant, and per the DelayModel contract the draw
// count (one Int63n per sampled packet when Jitter > 0, none otherwise)
// depends only on the packet sequence, never on the clock.
func (d *UniformDelay) Sample(time.Duration) time.Duration {
	if d.Jitter == 0 {
		return d.Base
	}
	return d.Base + time.Duration(d.rng.Int63n(int64(d.Jitter)))
}

// DelayFunc adapts a time-indexed delay function to a DelayModel, used by
// the cellular channel to add handoff-time delay inflation.
type DelayFunc struct {
	Fn func(now time.Duration) time.Duration
}

// Sample implements DelayModel.
func (d DelayFunc) Sample(now time.Duration) time.Duration { return d.Fn(now) }

// SumDelay adds the samples of several delay models, e.g. a fixed
// propagation floor plus a time-varying cellular component.
type SumDelay struct {
	Models []DelayModel
}

// NewSumDelay combines the given delay models additively.
func NewSumDelay(models ...DelayModel) *SumDelay { return &SumDelay{Models: models} }

// Sample implements DelayModel.
func (s *SumDelay) Sample(now time.Duration) time.Duration {
	var total time.Duration
	for _, m := range s.Models {
		total += m.Sample(now)
	}
	return total
}
