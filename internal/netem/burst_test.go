package netem

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

// burstRun drives one link through a schedule of bursts and records every
// externally observable effect: per-packet verdicts, delivery times in fire
// order, final stats, and the post-run state of the RNGs (witnessed by
// draining a few extra draws).
type burstRun struct {
	verdicts   []DropKind // per offered packet; 0 = accepted
	deliveries []time.Duration
	stats      LinkStats
	rngTail    [8]int64
}

// runBurstSchedule executes bursts of the given sizes back to back on a
// fresh link, advancing virtual time between bursts. vectorized selects
// BeginBurstN vs the scalar BeginBurst + n Sends.
func runBurstSchedule(seed int64, rate float64, maxQueue int, jitter time.Duration,
	lossP float64, counts []int, vectorized bool) burstRun {

	s := sim.New()
	delayRng := rand.New(rand.NewSource(seed))
	lossRng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	cfg := LinkConfig{
		Rate:     rate,
		MaxQueue: maxQueue,
		Delay:    NewUniformDelay(5*time.Millisecond, jitter, delayRng),
		Loss: NewTransitLossFunc(func(sent, arrival time.Duration) float64 {
			// Time-dependent probability with a p == 0 stretch, so the
			// "no draw when p == 0" path is exercised by both
			// implementations.
			if sent%(20*time.Millisecond) < 4*time.Millisecond {
				return 0
			}
			return lossP
		}, lossRng),
	}
	l := NewLink(s, cfg)

	var run burstRun
	at := time.Duration(0)
	for _, n := range counts {
		at += 10 * time.Millisecond
		n := n
		s.At(at, func() {
			var b Burst
			if vectorized {
				b = l.BeginBurstN(1400, n)
			} else {
				b = l.BeginBurst(1400)
			}
			for i := 0; i < n; i++ {
				ok, kind := b.Send(HandlerFunc(func() {
					run.deliveries = append(run.deliveries, s.Now())
				}))
				if ok {
					kind = 0
				}
				run.verdicts = append(run.verdicts, kind)
			}
		})
	}
	s.Run()
	run.stats = l.stats
	for i := range run.rngTail {
		run.rngTail[i] = delayRng.Int63() ^ lossRng.Int63()
	}
	return run
}

func diffBurstRuns(t *testing.T, scalar, vector burstRun) {
	t.Helper()
	if len(scalar.verdicts) != len(vector.verdicts) {
		t.Fatalf("verdict counts differ: scalar %d, vector %d", len(scalar.verdicts), len(vector.verdicts))
	}
	for i := range scalar.verdicts {
		if scalar.verdicts[i] != vector.verdicts[i] {
			t.Fatalf("packet %d verdict: scalar %v, vector %v", i, scalar.verdicts[i], vector.verdicts[i])
		}
	}
	if len(scalar.deliveries) != len(vector.deliveries) {
		t.Fatalf("delivery counts differ: scalar %d, vector %d", len(scalar.deliveries), len(vector.deliveries))
	}
	for i := range scalar.deliveries {
		if scalar.deliveries[i] != vector.deliveries[i] {
			t.Fatalf("delivery %d at %v scalar vs %v vector", i, scalar.deliveries[i], vector.deliveries[i])
		}
	}
	// Stats must match except the vector counters, which only the
	// vectorized run accrues.
	sv, vv := scalar.stats, vector.stats
	sv.VectorBursts, sv.VectorPackets = 0, 0
	vv.VectorBursts, vv.VectorPackets = 0, 0
	if sv != vv {
		t.Fatalf("stats differ: scalar %+v, vector %+v", sv, vv)
	}
	if scalar.rngTail != vector.rngTail {
		t.Fatalf("RNG state diverged: scalar tail %v, vector tail %v", scalar.rngTail, vector.rngTail)
	}
}

// TestBurstVectorizedMatchesScalar pins the headline contract on a fixed
// schedule mixing queue pressure, jitter, and loss.
func TestBurstVectorizedMatchesScalar(t *testing.T) {
	counts := []int{1, 4, 28, 2, 16, 0, 9, 28, 28, 3}
	scalar := runBurstSchedule(7, 50e6, 8, 3*time.Millisecond, 0.3, counts, false)
	vector := runBurstSchedule(7, 50e6, 8, 3*time.Millisecond, 0.3, counts, true)
	diffBurstRuns(t, scalar, vector)
	if vector.stats.VectorBursts == 0 || vector.stats.VectorPackets == 0 {
		t.Fatalf("vector counters did not move: %+v", vector.stats)
	}
}

// TestBurstUnderconsumedPanics pins the exactly-n contract: beginning a new
// burst with primed outcomes unconsumed must panic rather than silently
// desynchronize the RNG stream.
func TestBurstUnderconsumedPanics(t *testing.T) {
	s := sim.New()
	l := NewLink(s, LinkConfig{Delay: FixedDelay(time.Millisecond)})
	b := l.BeginBurstN(1000, 3)
	b.Send(HandlerFunc(func() {}))
	defer func() {
		if recover() == nil {
			t.Fatal("BeginBurst after underconsumed vectorized burst did not panic")
		}
	}()
	l.BeginBurst(1000)
}

// TestBurstOverconsumedPanics: the (n+1)th Send on a vectorized burst must
// panic.
func TestBurstOverconsumedPanics(t *testing.T) {
	s := sim.New()
	l := NewLink(s, LinkConfig{Delay: FixedDelay(time.Millisecond)})
	b := l.BeginBurstN(1000, 1)
	b.Send(HandlerFunc(func() {}))
	defer func() {
		if recover() == nil {
			t.Fatal("overconsuming a vectorized burst did not panic")
		}
	}()
	b.Send(HandlerFunc(func() {}))
}

// TestBurstPrimedZeroAlloc gates the vectorized hot path at 0 allocs/op
// once the scratch buffer and event pool are warm.
func TestBurstPrimedZeroAlloc(t *testing.T) {
	s := sim.New()
	l := NewLink(s, LinkConfig{
		Rate:     100e6,
		MaxQueue: 64,
		Delay:    NewUniformDelay(time.Millisecond, time.Millisecond, rand.New(rand.NewSource(1))),
		Loss:     NewBernoulli(0.05, rand.New(rand.NewSource(2))),
	})
	h := HandlerFunc(func() {})
	const n = 16
	// Warm the scratch buffer and the event pool.
	b := l.BeginBurstN(1400, n)
	for i := 0; i < n; i++ {
		b.Send(h)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		b := l.BeginBurstN(1400, n)
		for i := 0; i < n; i++ {
			b.Send(h)
		}
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("vectorized burst path allocates %v/op, want 0", allocs)
	}
}

// FuzzBurstSampling is the differential target for burst vectorization: a
// fuzzed link shape and burst schedule is run through the scalar and the
// vectorized submission paths, and every observable — per-packet verdicts,
// delivery times, final stats, and the RNG stream positions afterwards —
// must match exactly. Run in CI's fuzz smoke step.
func FuzzBurstSampling(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint16(0), uint16(300), []byte{1, 4, 28})
	f.Add(int64(9), uint8(50), uint8(8), uint16(3000), uint16(900), []byte{28, 0, 2, 28, 16})
	f.Add(int64(-3), uint8(255), uint8(1), uint16(1), uint16(0), []byte{7, 7, 7, 7})

	f.Fuzz(func(t *testing.T, seed int64, rateSel, maxQueue uint8, jitterUS uint16, lossPM uint16, schedule []byte) {
		if len(schedule) == 0 || len(schedule) > 64 {
			t.Skip()
		}
		counts := make([]int, len(schedule))
		for i, c := range schedule {
			counts[i] = int(c % 33)
		}
		var rate float64
		if rateSel > 0 {
			// 0 keeps the infinitely fast path in the mix; otherwise rates
			// from ~0.4 Mbps (heavy queueing) up to ~100 Mbps.
			rate = float64(rateSel) * 400e3
		}
		jitter := time.Duration(jitterUS) * time.Microsecond
		lossP := float64(lossPM%1001) / 1000
		scalar := runBurstSchedule(seed, rate, int(maxQueue), jitter, lossP, counts, false)
		vector := runBurstSchedule(seed, rate, int(maxQueue), jitter, lossP, counts, true)
		diffBurstRuns(t, scalar, vector)
	})
}
