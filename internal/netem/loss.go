// Package netem emulates unidirectional network links at packet granularity:
// serialization at a finite line rate with a bounded queue, propagation
// delay with jitter, and pluggable random-loss processes (Bernoulli,
// Gilbert-Elliott bursts, and time-varying loss driven by the cellular
// channel model). A pair of links forms a Path, the substrate the TCP
// endpoints run over.
package netem

import (
	"fmt"
	"math/rand"
	"time"
)

// LossModel decides whether a packet is dropped by the radio channel. It
// sees both transit epochs — when the packet entered the link (sent) and
// when it would arrive (arrival) — because a time-varying channel must be
// survived at both ends: a packet already in flight when a handoff outage
// begins is exposed to the outage even though it was sent on a clean
// channel. Implementations are stateful (burst models) and not safe for
// concurrent use; the simulation is single-threaded by construction.
type LossModel interface {
	Drop(sent, arrival time.Duration) bool
}

// NoLoss is a LossModel that never drops.
type NoLoss struct{}

// Drop implements LossModel; it always returns false.
func (NoLoss) Drop(_, _ time.Duration) bool { return false }

// Bernoulli drops each packet independently with probability P.
type Bernoulli struct {
	P   float64
	rng *rand.Rand
}

// NewBernoulli returns an independent-loss model with drop probability p.
// It panics if p is outside [0, 1].
func NewBernoulli(p float64, rng *rand.Rand) *Bernoulli {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("netem: Bernoulli probability %v outside [0,1]", p))
	}
	return &Bernoulli{P: p, rng: rng}
}

// Drop implements LossModel.
func (b *Bernoulli) Drop(_, _ time.Duration) bool {
	return b.P > 0 && b.rng.Float64() < b.P
}

// GilbertElliott is the classic two-state burst-loss channel. In the Good
// state packets drop with probability LossGood, in the Bad state with
// LossBad; the chain moves Good->Bad with PGoodBad and Bad->Good with
// PBadGood per packet.
type GilbertElliott struct {
	PGoodBad float64 // transition probability good -> bad, per packet
	PBadGood float64 // transition probability bad -> good, per packet
	LossGood float64 // drop probability while in the good state
	LossBad  float64 // drop probability while in the bad state

	bad bool
	rng *rand.Rand
}

// NewGilbertElliott builds a two-state burst-loss model starting in the Good
// state. All probabilities must lie in [0, 1].
func NewGilbertElliott(pGoodBad, pBadGood, lossGood, lossBad float64, rng *rand.Rand) *GilbertElliott {
	for _, p := range []float64{pGoodBad, pBadGood, lossGood, lossBad} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("netem: GilbertElliott probability %v outside [0,1]", p))
		}
	}
	return &GilbertElliott{
		PGoodBad: pGoodBad,
		PBadGood: pBadGood,
		LossGood: lossGood,
		LossBad:  lossBad,
		rng:      rng,
	}
}

// Drop implements LossModel: advance the state chain, then draw a loss from
// the current state's loss probability.
func (g *GilbertElliott) Drop(_, _ time.Duration) bool {
	if g.bad {
		if g.rng.Float64() < g.PBadGood {
			g.bad = false
		}
	} else {
		if g.rng.Float64() < g.PGoodBad {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return p > 0 && g.rng.Float64() < p
}

// InBadState reports whether the chain is currently in the Bad state.
func (g *GilbertElliott) InBadState() bool { return g.bad }

// LossFunc adapts a time-indexed loss probability function to a LossModel.
// The cellular channel exposes its handoff outages and speed-dependent
// residual loss this way.
type LossFunc struct {
	Prob func(now time.Duration) float64
	rng  *rand.Rand
}

// NewLossFunc wraps prob (which must return values in [0, 1]) as a LossModel.
func NewLossFunc(prob func(time.Duration) float64, rng *rand.Rand) *LossFunc {
	if prob == nil {
		panic("netem: NewLossFunc with nil probability function")
	}
	return &LossFunc{Prob: prob, rng: rng}
}

// Drop implements LossModel: the packet faces the worse of the channel
// conditions at its two transit epochs.
func (f *LossFunc) Drop(sent, arrival time.Duration) bool {
	p := f.Prob(sent)
	if pa := f.Prob(arrival); pa > p {
		p = pa
	}
	return p > 0 && f.rng.Float64() < p
}

// TransitLossFunc adapts a loss probability function of both transit epochs
// to a LossModel. The cellular channel uses it to distinguish packets sent
// while the radio bearer is down (retransmission probes, ACKs from a
// detached phone) from packets that merely arrive into an outage.
type TransitLossFunc struct {
	Prob func(sent, arrival time.Duration) float64
	rng  *rand.Rand
}

// NewTransitLossFunc wraps prob (values in [0, 1]) as a LossModel.
func NewTransitLossFunc(prob func(sent, arrival time.Duration) float64, rng *rand.Rand) *TransitLossFunc {
	if prob == nil {
		panic("netem: NewTransitLossFunc with nil probability function")
	}
	return &TransitLossFunc{Prob: prob, rng: rng}
}

// Drop implements LossModel.
func (f *TransitLossFunc) Drop(sent, arrival time.Duration) bool {
	p := f.Prob(sent, arrival)
	return p > 0 && f.rng.Float64() < p
}

// AnyLoss combines loss models: a packet is dropped if any component model
// drops it. Every component sees every packet, so burst-model state advances
// consistently regardless of the other components' decisions.
type AnyLoss struct {
	Models []LossModel
}

// NewAnyLoss combines the given models.
func NewAnyLoss(models ...LossModel) *AnyLoss {
	return &AnyLoss{Models: models}
}

// Drop implements LossModel.
func (a *AnyLoss) Drop(sent, arrival time.Duration) bool {
	dropped := false
	for _, m := range a.Models {
		if m.Drop(sent, arrival) {
			dropped = true
		}
	}
	return dropped
}
