package netem

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func newTestLink(t *testing.T, cfg LinkConfig) (*sim.Simulator, *Link) {
	t.Helper()
	s := sim.New()
	if cfg.Delay == nil {
		cfg.Delay = FixedDelay(10 * time.Millisecond)
	}
	return s, NewLink(s, cfg)
}

func TestLinkDeliversWithDelay(t *testing.T) {
	s, l := newTestLink(t, LinkConfig{Delay: FixedDelay(25 * time.Millisecond)})
	var deliveredAt time.Duration
	ok, _ := l.Send(1000, HandlerFunc(func() { deliveredAt = s.Now() }))
	if !ok {
		t.Fatal("Send reported drop on lossless link")
	}
	s.Run()
	if deliveredAt != 25*time.Millisecond {
		t.Errorf("delivered at %v, want 25ms", deliveredAt)
	}
	if got := l.Stats(); got.Offered != 1 || got.Delivered != 1 {
		t.Errorf("stats = %+v", got)
	}
}

func TestLinkSerializationDelay(t *testing.T) {
	// 8000 bits at 8000 bit/s = 1 s serialization per 1000-byte packet.
	s, l := newTestLink(t, LinkConfig{Rate: 8000, Delay: FixedDelay(0)})
	var times []time.Duration
	for i := 0; i < 3; i++ {
		l.Send(1000, HandlerFunc(func() { times = append(times, s.Now()) }))
	}
	s.Run()
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if len(times) != 3 {
		t.Fatalf("delivered %d, want 3", len(times))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("packet %d delivered at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestLinkQueueTailDrop(t *testing.T) {
	s, l := newTestLink(t, LinkConfig{Rate: 8000, MaxQueue: 2, Delay: FixedDelay(0)})
	accepted := 0
	queueDrops := 0
	// First packet enters service immediately; next two queue; the rest tail-drop.
	for i := 0; i < 6; i++ {
		ok, kind := l.Send(1000, HandlerFunc(func() {}))
		if ok {
			accepted++
		} else if kind == DropQueue {
			queueDrops++
		}
	}
	s.Run()
	if accepted != 3 {
		t.Errorf("accepted = %d, want 3 (1 in service + 2 queued)", accepted)
	}
	if queueDrops != 3 {
		t.Errorf("queueDrops = %d, want 3", queueDrops)
	}
	if got := l.Stats(); got.QueueDrops != 3 || got.Delivered != 3 {
		t.Errorf("stats = %+v", got)
	}
}

func TestLinkQueueDrainsOverTime(t *testing.T) {
	s, l := newTestLink(t, LinkConfig{Rate: 8000, MaxQueue: 1, Delay: FixedDelay(0)})
	if ok, _ := l.Send(1000, HandlerFunc(func() {})); !ok {
		t.Fatal("first packet rejected")
	}
	if ok, _ := l.Send(1000, HandlerFunc(func() {})); !ok {
		t.Fatal("second packet should queue")
	}
	if ok, kind := l.Send(1000, HandlerFunc(func() {})); ok || kind != DropQueue {
		t.Fatal("third packet should tail-drop")
	}
	s.RunUntil(2500 * time.Millisecond) // both packets done by 2s
	if ok, _ := l.Send(1000, HandlerFunc(func() {})); !ok {
		t.Error("packet after drain should be accepted")
	}
	s.Run()
}

func TestLinkChannelDrop(t *testing.T) {
	rng := sim.NewRand(8, sim.StreamDataLoss)
	s, l := newTestLink(t, LinkConfig{
		Delay: FixedDelay(time.Millisecond),
		Loss:  NewBernoulli(1, rng),
	})
	called := false
	ok, kind := l.Send(100, HandlerFunc(func() { called = true }))
	if ok || kind != DropChannel {
		t.Fatalf("Send = (%v, %v), want (false, channel)", ok, kind)
	}
	s.Run()
	if called {
		t.Error("deliver callback fired for a dropped packet")
	}
	st := l.Stats()
	if st.ChannelDrops != 1 || st.Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.LossRate() != 1 {
		t.Errorf("LossRate = %v, want 1", st.LossRate())
	}
}

func TestLinkNoReordering(t *testing.T) {
	// A jittery delay model could reorder; the link must clamp deliveries to
	// FIFO order.
	rng := sim.NewRand(9, sim.StreamDelay)
	s := sim.New()
	l := NewLink(s, LinkConfig{Delay: NewUniformDelay(time.Millisecond, 50*time.Millisecond, rng)})
	var order []int
	for i := 0; i < 200; i++ {
		i := i
		l.Send(100, HandlerFunc(func() { order = append(order, i) }))
		s.RunUntil(s.Now() + 100*time.Microsecond)
	}
	s.Run()
	if len(order) != 200 {
		t.Fatalf("delivered %d, want 200", len(order))
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("reordered delivery at index %d: %d", i, order[i])
		}
	}
}

func TestLinkPanics(t *testing.T) {
	s := sim.New()
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("nil simulator", func() { NewLink(nil, LinkConfig{Delay: FixedDelay(0)}) })
	assertPanics("nil delay", func() { NewLink(s, LinkConfig{}) })
	assertPanics("negative rate", func() { NewLink(s, LinkConfig{Rate: -1, Delay: FixedDelay(0)}) })
	l := NewLink(s, LinkConfig{Delay: FixedDelay(0)})
	assertPanics("zero size", func() { l.Send(0, HandlerFunc(func() {})) })
	assertPanics("nil deliver", func() { l.Send(10, nil) })
}

func TestLinkStatsLossRateEmpty(t *testing.T) {
	var st LinkStats
	if got := st.LossRate(); got != 0 {
		t.Errorf("LossRate of empty stats = %v, want 0", got)
	}
}

func TestQueueDepth(t *testing.T) {
	s, l := newTestLink(t, LinkConfig{Rate: 8000, Delay: FixedDelay(0)})
	if l.QueueDepth() != 0 {
		t.Error("idle link should have zero queue depth")
	}
	l.Send(1000, HandlerFunc(func() {})) // 1s of service time
	if got := l.QueueDepth(); got != time.Second {
		t.Errorf("QueueDepth = %v, want 1s", got)
	}
	s.Run()
	if l.QueueDepth() != 0 {
		t.Error("drained link should have zero queue depth")
	}
}

func TestDelayModels(t *testing.T) {
	if got := FixedDelay(5 * time.Millisecond).Sample(0); got != 5*time.Millisecond {
		t.Errorf("FixedDelay.Sample = %v", got)
	}
	rng := sim.NewRand(10, sim.StreamDelay)
	u := NewUniformDelay(10*time.Millisecond, 5*time.Millisecond, rng)
	for i := 0; i < 1000; i++ {
		d := u.Sample(0)
		if d < 10*time.Millisecond || d >= 15*time.Millisecond {
			t.Fatalf("UniformDelay.Sample = %v outside [10ms, 15ms)", d)
		}
	}
	zeroJitter := NewUniformDelay(7*time.Millisecond, 0, rng)
	if got := zeroJitter.Sample(0); got != 7*time.Millisecond {
		t.Errorf("zero-jitter Sample = %v, want 7ms", got)
	}
	df := DelayFunc{Fn: func(now time.Duration) time.Duration { return now / 2 }}
	if got := df.Sample(10 * time.Second); got != 5*time.Second {
		t.Errorf("DelayFunc.Sample = %v, want 5s", got)
	}
	sum := NewSumDelay(FixedDelay(time.Millisecond), FixedDelay(2*time.Millisecond))
	if got := sum.Sample(0); got != 3*time.Millisecond {
		t.Errorf("SumDelay.Sample = %v, want 3ms", got)
	}
}

func TestUniformDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewUniformDelay with negative base did not panic")
		}
	}()
	NewUniformDelay(-time.Millisecond, 0, sim.NewRand(1, sim.StreamDelay))
}

func TestNewPath(t *testing.T) {
	s := sim.New()
	f := NewLink(s, LinkConfig{Delay: FixedDelay(0)})
	r := NewLink(s, LinkConfig{Delay: FixedDelay(0)})
	p := NewPath(f, r)
	if p.Forward != f || p.Reverse != r {
		t.Error("NewPath did not wire links")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewPath with nil link did not panic")
		}
	}()
	NewPath(f, nil)
}

func TestDropKindString(t *testing.T) {
	if DropChannel.String() != "channel" || DropQueue.String() != "queue" {
		t.Error("DropKind.String mismatch")
	}
	if got := DropKind(99).String(); got != "DropKind(99)" {
		t.Errorf("unknown DropKind.String = %q", got)
	}
}

func TestLinkRateScale(t *testing.T) {
	// 8000 bit/s and 1000-byte packets: 1 s serialization at full rate.
	scale := 1.0
	s, l := newTestLink(t, LinkConfig{
		Rate:      8000,
		Delay:     FixedDelay(0),
		RateScale: func(time.Duration) float64 { return scale },
	})
	var deliveredAt []time.Duration
	send := func() {
		if ok, _ := l.Send(1000, HandlerFunc(func() { deliveredAt = append(deliveredAt, s.Now()) })); !ok {
			t.Fatal("unexpected drop")
		}
	}
	send()
	s.Run()
	if deliveredAt[0] != time.Second {
		t.Fatalf("full-rate serialization took %v, want 1s", deliveredAt[0])
	}

	// Collapse the rate to a quarter: the next packet serializes in 4 s.
	scale = 0.25
	send()
	s.Run()
	if got := deliveredAt[1] - deliveredAt[0]; got != 4*time.Second {
		t.Errorf("collapsed-rate serialization took %v, want 4s", got)
	}

	// A zero (or negative) scale is floored, not divided by: the packet is
	// extremely slow but the simulation stays finite.
	scale = 0
	send()
	s.Run()
	if len(deliveredAt) != 3 {
		t.Fatal("packet under floored rate scale never delivered")
	}
	if got := deliveredAt[2] - deliveredAt[1]; got <= 4*time.Second {
		t.Errorf("floored-rate serialization took %v, want far slower than the collapse", got)
	}
}

func TestLinkRateScaleIgnoredWhenInfinitelyFast(t *testing.T) {
	called := false
	s, l := newTestLink(t, LinkConfig{
		Delay:     FixedDelay(5 * time.Millisecond),
		RateScale: func(time.Duration) float64 { called = true; return 0.5 },
	})
	var at time.Duration
	l.Send(1000, HandlerFunc(func() { at = s.Now() }))
	s.Run()
	if called {
		t.Error("RateScale consulted on a rate-unlimited link")
	}
	if at != 5*time.Millisecond {
		t.Errorf("delivered at %v, want pure propagation delay", at)
	}
}
