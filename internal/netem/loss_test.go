package netem

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestNoLoss(t *testing.T) {
	var m NoLoss
	for i := 0; i < 100; i++ {
		if m.Drop(time.Duration(i), time.Duration(i)) {
			t.Fatal("NoLoss dropped a packet")
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	rng := sim.NewRand(1, sim.StreamDataLoss)
	never := NewBernoulli(0, rng)
	always := NewBernoulli(1, rng)
	for i := 0; i < 1000; i++ {
		if never.Drop(0, 0) {
			t.Fatal("Bernoulli(0) dropped")
		}
		if !always.Drop(0, 0) {
			t.Fatal("Bernoulli(1) did not drop")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	rng := sim.NewRand(2, sim.StreamDataLoss)
	m := NewBernoulli(0.3, rng)
	drops := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if m.Drop(0, 0) {
			drops++
		}
	}
	rate := float64(drops) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("empirical drop rate = %v, want ~0.3", rate)
	}
}

func TestBernoulliPanicsOutOfRange(t *testing.T) {
	rng := sim.NewRand(1, sim.StreamDataLoss)
	for _, p := range []float64{-0.1, 1.1} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBernoulli(%v) did not panic", p)
				}
			}()
			NewBernoulli(p, rng)
		}()
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	rng := sim.NewRand(3, sim.StreamDataLoss)
	// Good state lossless, bad state always lossy; expect loss to come in
	// runs whose mean length is 1/pBadGood = 10.
	m := NewGilbertElliott(0.02, 0.1, 0, 1, rng)
	var runs []int
	cur := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if m.Drop(0, 0) {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	if len(runs) == 0 {
		t.Fatal("no loss bursts observed")
	}
	var sum float64
	for _, r := range runs {
		sum += float64(r)
	}
	mean := sum / float64(len(runs))
	// Mean burst length ~ 1/0.1 = 10 (within sampling noise).
	if mean < 8 || mean > 12 {
		t.Errorf("mean burst length = %v, want ~10", mean)
	}
}

func TestGilbertElliottStationaryLoss(t *testing.T) {
	rng := sim.NewRand(4, sim.StreamDataLoss)
	pGB, pBG := 0.01, 0.09
	m := NewGilbertElliott(pGB, pBG, 0, 1, rng)
	drops := 0
	const n = 300000
	for i := 0; i < n; i++ {
		if m.Drop(0, 0) {
			drops++
		}
	}
	// Stationary bad-state probability = pGB / (pGB + pBG) = 0.1.
	rate := float64(drops) / n
	if math.Abs(rate-0.1) > 0.01 {
		t.Errorf("stationary loss rate = %v, want ~0.1", rate)
	}
}

func TestLossFuncUsesTime(t *testing.T) {
	rng := sim.NewRand(5, sim.StreamDataLoss)
	outage := func(now time.Duration) float64 {
		if now >= time.Second && now < 2*time.Second {
			return 1
		}
		return 0
	}
	m := NewLossFunc(outage, rng)
	if m.Drop(500*time.Millisecond, 500*time.Millisecond) {
		t.Error("dropped outside the outage window")
	}
	if !m.Drop(1500*time.Millisecond, 1500*time.Millisecond) {
		t.Error("did not drop inside the outage window")
	}
	if m.Drop(2*time.Second, 2*time.Second) {
		t.Error("dropped after the outage window")
	}
}

func TestLossFuncNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLossFunc(nil) did not panic")
		}
	}()
	NewLossFunc(nil, sim.NewRand(1, sim.StreamDataLoss))
}

func TestAnyLossCombines(t *testing.T) {
	rng := sim.NewRand(6, sim.StreamDataLoss)
	m := NewAnyLoss(NewBernoulli(0, rng), NewBernoulli(1, rng))
	if !m.Drop(0, 0) {
		t.Error("AnyLoss with an always-drop component did not drop")
	}
	m = NewAnyLoss(NoLoss{}, NoLoss{})
	if m.Drop(0, 0) {
		t.Error("AnyLoss with no dropping components dropped")
	}
}

func TestAnyLossAdvancesAllComponents(t *testing.T) {
	rng := sim.NewRand(7, sim.StreamDataLoss)
	// The GE chain must see every packet even when an earlier component
	// already decided to drop. Force drops via an always-lossy first
	// component and check the GE chain still transitions.
	ge := NewGilbertElliott(1, 0, 0, 0, rng) // moves to Bad on first packet
	m := NewAnyLoss(NewBernoulli(1, rng), ge)
	m.Drop(0, 0)
	if !ge.InBadState() {
		t.Error("combined model did not advance the Gilbert-Elliott chain")
	}
}
