package netem

import (
	"fmt"

	"repro/internal/sim"
)

// BottleneckConfig sizes a shared bottleneck: one emulated cell whose
// downlink and uplink capacity every attached flow competes for.
type BottleneckConfig struct {
	// DownRate / UpRate are the shared line rates in bits per second.
	DownRate float64
	UpRate   float64
	// Queue is the shared FIFO depth, in packets, of each direction.
	Queue int
}

// Validate checks the configuration.
func (c BottleneckConfig) Validate() error {
	if c.DownRate <= 0 || c.UpRate <= 0 {
		return fmt.Errorf("netem: bottleneck rates [%v, %v] must be positive", c.DownRate, c.UpRate)
	}
	if c.Queue < 1 {
		return fmt.Errorf("netem: bottleneck queue %d must be >= 1", c.Queue)
	}
	return nil
}

// Bottleneck is a shared two-direction bottleneck: a downlink and an uplink
// Link that model only serialization rate and a bounded FIFO queue. Several
// flows chain their private loss/delay stages into the same Bottleneck, so
// their packets interleave in one queue and contend for one transmitter —
// the shared-cell topology the multi-flow fairness experiments measure.
//
// The shared stages deliberately carry no loss or delay model of their own:
// per-flow channel behaviour stays in the private stage (whose drop verdict
// is synchronous, keeping per-flow traces exact), while queueing delay and
// overflow drops emerge from the contention itself.
type Bottleneck struct {
	Down *Link
	Up   *Link
}

// NewBottleneck builds the shared stages on the simulator.
func NewBottleneck(simulator *sim.Simulator, cfg BottleneckConfig) (*Bottleneck, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Bottleneck{
		Down: NewLink(simulator, LinkConfig{
			Rate: cfg.DownRate, MaxQueue: cfg.Queue, Delay: FixedDelay(0),
		}),
		Up: NewLink(simulator, LinkConfig{
			Rate: cfg.UpRate, MaxQueue: cfg.Queue, Delay: FixedDelay(0),
		}),
	}, nil
}

// FlowPath chains one flow's private stages (fwd carries data toward the
// receiver, rev carries ACKs back) into the shared bottleneck: packets
// traverse the private stage first, then queue on the shared transmitter.
func (b *Bottleneck) FlowPath(fwd, rev Sender) *Path {
	return NewPath(NewChain(fwd, b.Down), NewChain(rev, b.Up))
}

// Stats returns the shared stages' per-direction counters; queue drops here
// are contention overflow, not channel loss.
func (b *Bottleneck) Stats() (down, up LinkStats) {
	return b.Down.Stats(), b.Up.Stats()
}
