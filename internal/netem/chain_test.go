package netem

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestChainDeliversThroughStages(t *testing.T) {
	s := sim.New()
	a := NewLink(s, LinkConfig{Delay: FixedDelay(10 * time.Millisecond)})
	b := NewLink(s, LinkConfig{Delay: FixedDelay(15 * time.Millisecond)})
	c := NewChain(a, b)
	var at time.Duration
	ok, _ := c.Send(1000, HandlerFunc(func() { at = s.Now() }))
	if !ok {
		t.Fatal("chain send rejected")
	}
	s.Run()
	if at != 25*time.Millisecond {
		t.Errorf("delivered at %v, want 25ms (sum of stage delays)", at)
	}
	if a.Stats().Delivered != 1 || b.Stats().Delivered != 1 {
		t.Error("stage counters not updated")
	}
}

func TestChainSharedCapacityStage(t *testing.T) {
	// Two flows share one rate-limited stage: their packets serialize.
	s := sim.New()
	shared := NewLink(s, LinkConfig{Rate: 8000, Delay: FixedDelay(0)}) // 1s per 1000B packet
	f1 := NewChain(NewLink(s, LinkConfig{Delay: FixedDelay(0)}), shared)
	f2 := NewChain(NewLink(s, LinkConfig{Delay: FixedDelay(0)}), shared)
	var times []time.Duration
	f1.Send(1000, HandlerFunc(func() { times = append(times, s.Now()) }))
	f2.Send(1000, HandlerFunc(func() { times = append(times, s.Now()) }))
	s.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d, want 2", len(times))
	}
	if times[0] != time.Second || times[1] != 2*time.Second {
		t.Errorf("deliveries at %v, want serialization to 1s and 2s", times)
	}
}

func TestChainFirstStageDropIsSynchronous(t *testing.T) {
	s := sim.New()
	rng := sim.NewRand(1, sim.StreamDataLoss)
	lossy := NewLink(s, LinkConfig{Delay: FixedDelay(0), Loss: NewBernoulli(1, rng)})
	clean := NewLink(s, LinkConfig{Delay: FixedDelay(0)})
	c := NewChain(lossy, clean)
	ok, kind := c.Send(100, HandlerFunc(func() { t.Error("dropped packet delivered") }))
	if ok || kind != DropChannel {
		t.Errorf("Send = (%v, %v), want synchronous channel drop", ok, kind)
	}
	s.Run()
}

func TestChainLaterStageDropIsSilent(t *testing.T) {
	s := sim.New()
	rng := sim.NewRand(2, sim.StreamDataLoss)
	clean := NewLink(s, LinkConfig{Delay: FixedDelay(0)})
	lossy := NewLink(s, LinkConfig{Delay: FixedDelay(0), Loss: NewBernoulli(1, rng)})
	c := NewChain(clean, lossy)
	delivered := false
	ok, _ := c.Send(100, HandlerFunc(func() { delivered = true }))
	if !ok {
		t.Error("first-stage verdict should be accept")
	}
	s.Run()
	if delivered {
		t.Error("second-stage drop delivered anyway")
	}
	if lossy.Stats().ChannelDrops != 1 {
		t.Error("second stage did not record the drop")
	}
}

func TestChainSingleStage(t *testing.T) {
	s := sim.New()
	l := NewLink(s, LinkConfig{Delay: FixedDelay(5 * time.Millisecond)})
	c := NewChain(l)
	done := false
	c.Send(10, HandlerFunc(func() { done = true }))
	s.Run()
	if !done {
		t.Error("single-stage chain did not deliver")
	}
}

func TestNewChainPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("empty", func() { NewChain() })
	assertPanics("nil stage", func() { NewChain(nil) })
}

func TestTransitLossFunc(t *testing.T) {
	rng := sim.NewRand(3, sim.StreamDataLoss)
	// Loss depends on the arrival epoch only.
	m := NewTransitLossFunc(func(_, arrival time.Duration) float64 {
		if arrival >= time.Second {
			return 1
		}
		return 0
	}, rng)
	if m.Drop(0, 500*time.Millisecond) {
		t.Error("dropped before the lossy epoch")
	}
	if !m.Drop(0, 2*time.Second) {
		t.Error("survived arrival inside the lossy epoch")
	}
}

func TestTransitLossFuncNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTransitLossFunc(nil) did not panic")
		}
	}()
	NewTransitLossFunc(nil, sim.NewRand(1, sim.StreamDataLoss))
}

func TestLossFuncMaxOfBothEpochs(t *testing.T) {
	rng := sim.NewRand(4, sim.StreamDataLoss)
	outage := func(now time.Duration) float64 {
		if now >= time.Second && now < 2*time.Second {
			return 1
		}
		return 0
	}
	m := NewLossFunc(outage, rng)
	// Sent clean, arrives into the outage: must drop (max of both epochs).
	if !m.Drop(900*time.Millisecond, 1100*time.Millisecond) {
		t.Error("packet arriving into outage survived")
	}
	// Sent in the outage, arrives after: must drop too.
	if !m.Drop(1900*time.Millisecond, 2100*time.Millisecond) {
		t.Error("packet sent in outage survived")
	}
	// Clean on both ends.
	if m.Drop(2100*time.Millisecond, 2200*time.Millisecond) {
		t.Error("clean packet dropped")
	}
}

func TestLinkDecidesLossAtArrivalEpoch(t *testing.T) {
	// End-to-end: a packet sent just before an outage but arriving inside
	// it is dropped by the link.
	s := sim.New()
	rng := sim.NewRand(5, sim.StreamDataLoss)
	outage := func(now time.Duration) float64 {
		if now >= time.Second {
			return 1
		}
		return 0
	}
	l := NewLink(s, LinkConfig{
		Delay: FixedDelay(200 * time.Millisecond),
		Loss:  NewLossFunc(outage, rng),
	})
	s.Schedule(900*time.Millisecond, func() {
		ok, kind := l.Send(100, HandlerFunc(func() { t.Error("straddling packet delivered") }))
		if ok || kind != DropChannel {
			t.Errorf("straddling packet not dropped: (%v, %v)", ok, kind)
		}
	})
	s.Run()
}
