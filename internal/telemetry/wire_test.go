package telemetry

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// randomFlow builds a Flow bundle with every section populated from the
// seeded rng, including awkward floating-point cwnd samples.
func randomFlow(rng *rand.Rand) *Flow {
	f := NewFlow()
	f.Kernel.Events = rng.Int63n(1 << 40)
	f.Kernel.Scheduled = rng.Int63n(1 << 40)
	f.Kernel.MaxPending = rng.Int63n(1 << 20)
	f.Kernel.Cascades = rng.Int63n(1 << 20)
	f.Kernel.VirtualNS = rng.Int63n(1 << 50)
	f.TCP.Flows = 1
	f.TCP.DataSent = rng.Int63n(1 << 30)
	f.TCP.Retransmissions = rng.Int63n(1 << 20)
	f.TCP.Timeouts = rng.Int63n(100)
	f.TCP.RecoveryNS = rng.Int63n(1 << 40)
	for i, n := 0, 1+rng.Intn(200); i < n; i++ {
		v := rng.Float64()*130 + rng.ExpFloat64()
		f.TCP.Cwnd.Add(v)
		f.TCP.CwndHist.Add(v)
	}
	for i, n := 0, rng.Intn(10); i < n; i++ {
		f.TCP.BackoffHist.Add(float64(rng.Intn(8)))
	}
	f.Net.Data.Offered = rng.Int63n(1 << 30)
	f.Net.Data.ChannelDrops = rng.Int63n(1 << 10)
	f.Net.Data.PeakBacklog = rng.Int63n(1 << 10)
	f.Faults.Episodes = rng.Int63n(10)
	f.WallNS = rng.Int63n(1 << 30)
	return f
}

// campaignBytes marshals a campaign for byte comparison.
func campaignBytes(t *testing.T, c *Campaign) []byte {
	t.Helper()
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal campaign: %v", err)
	}
	return raw
}

// TestFlowStateWireRoundTripExact is the invariant distributed campaign
// execution rests on: a Flow shipped through the FlowState JSON wire form
// and restored on the other side merges into a Campaign byte-identically
// to the original — including the floating-point cwnd accumulator the
// summary JSON form deliberately rounds.
func TestFlowStateWireRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		f := randomFlow(rng)

		state := f.State()
		raw, err := json.Marshal(&state)
		if err != nil {
			t.Fatalf("marshal state: %v", err)
		}
		var decoded FlowState
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("unmarshal state: %v", err)
		}
		restored := decoded.Restore()

		direct, viaWire := NewCampaign(), NewCampaign()
		direct.AddFlow(f)
		viaWire.AddFlow(restored)
		// Keep accumulating after the round trip: a restored accumulator
		// must evolve identically, not just render identically.
		extra := randomFlow(rng)
		direct.AddFlow(extra)
		viaWire.AddFlow(extra)

		if a, b := campaignBytes(t, direct), campaignBytes(t, viaWire); !bytes.Equal(a, b) {
			t.Fatalf("trial %d: wire round trip diverged:\ndirect: %s\nwire:   %s", trial, a, b)
		}
	}
}

// TestFlowStateSnapshotIsolated asserts State deep-copies histogram storage:
// mutating the original flow after the snapshot must not leak into it.
func TestFlowStateSnapshotIsolated(t *testing.T) {
	f := NewFlow()
	f.TCP.CwndHist.Add(3)
	state := f.State()
	f.TCP.CwndHist.Add(3)
	if got, want := state.Flow.TCP.CwndHist.Total(), int64(1); got != want {
		t.Fatalf("snapshot histogram total %d, want %d", got, want)
	}
	restored := state.Restore()
	restored.TCP.CwndHist.Add(3)
	if got, want := state.Flow.TCP.CwndHist.Total(), int64(1); got != want {
		t.Fatalf("restore aliases snapshot storage: total %d, want %d", got, want)
	}
}

// TestReportFleetRoundTrip asserts the fleet section survives the
// WriteJSON/ReadReport round trip byte for byte, like every other section.
func TestReportFleetRoundTrip(t *testing.T) {
	rep := &Report{
		Tool: "hsrserved", Version: "test", Seed: 9,
		Fleet: &Fleet{
			Workers: 3, Units: 16, UnitsDispatched: 21, UnitsCompleted: 14,
			UnitsLocal: 2, Retries: 5, Reassignments: 2, Hedges: 1,
			DuplicateResults: 1, WorkersLost: 2, WorkersReadmitted: 1, Degraded: 1,
		},
		Tasks: []TaskReport{{Name: "campaigns", Status: "ok"}},
	}
	var first bytes.Buffer
	if err := rep.WriteJSON(&first); err != nil {
		t.Fatalf("write: %v", err)
	}
	parsed, err := ReadReport(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if parsed.Fleet == nil || *parsed.Fleet != *rep.Fleet {
		t.Fatalf("fleet section did not round trip: %+v", parsed.Fleet)
	}
	var second bytes.Buffer
	if err := parsed.WriteJSON(&second); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("report round trip not byte-identical:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
	}

	var merged Fleet
	merged.Merge(rep.Fleet)
	merged.Merge(rep.Fleet)
	if merged.Units != 2*rep.Fleet.Units || merged.Workers != rep.Fleet.Workers {
		t.Fatalf("fleet merge wrong: %+v", merged)
	}
}
