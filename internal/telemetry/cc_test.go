package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// ccStats builds a populated per-variant entry for the tests.
func ccStats(scale int64) *CCStats {
	s := &CCStats{
		Flows:           scale,
		DataSent:        10 * scale,
		Retransmissions: 2 * scale,
		UniqueDelivered: 8 * scale,
		Timeouts:        scale,
		FastRetransmits: scale,
		RecoveryPhases:  scale,
		CwndHist:        NewHist(1, 2, 4, 8),
	}
	for i := int64(0); i < scale; i++ {
		s.CwndHist.Add(float64(1 + i%8))
	}
	return s
}

func TestTCPByCCMergeExactAndCommutative(t *testing.T) {
	mk := func() (TCP, TCP) {
		var a, b TCP
		a.ByCC = map[string]*CCStats{"reno": ccStats(3), "cubic": ccStats(5)}
		b.ByCC = map[string]*CCStats{"cubic": ccStats(7), "bbr": ccStats(2)}
		return a, b
	}
	ab, x := mk()
	ab.Merge(&x)
	y, ba := mk()
	ba.Merge(&y)
	if !reflect.DeepEqual(ab.ByCC, ba.ByCC) {
		t.Fatalf("ByCC merge is not commutative:\nab: %+v\nba: %+v", ab.ByCC, ba.ByCC)
	}
	cubic := ab.ByCC["cubic"]
	if cubic.Flows != 12 || cubic.DataSent != 120 {
		t.Fatalf("cubic merged wrong: %+v", cubic)
	}
	if got := cubic.CwndHist.Total(); got != 12 {
		t.Fatalf("cubic hist total = %d, want 12", got)
	}
	if len(ab.ByCC) != 3 {
		t.Fatalf("merged ByCC has %d variants, want 3", len(ab.ByCC))
	}
}

func TestTCPByCCMergeDoesNotAliasSource(t *testing.T) {
	var dst, src TCP
	src.ByCC = map[string]*CCStats{"reno": ccStats(1)}
	dst.Merge(&src)
	dst.ByCC["reno"].Flows += 100
	dst.CC("newreno").Flows++
	if src.ByCC["reno"].Flows != 1 {
		t.Fatal("merge aliased the source CCStats")
	}
	if _, leaked := src.ByCC["newreno"]; leaked {
		t.Fatal("merge aliased the source map")
	}
}

func TestCampaignCountersCloneByCC(t *testing.T) {
	camp := NewCampaign()
	fl := NewFlow()
	fl.TCP.CC("bbr").Flows = 1
	fl.TCP.CC("bbr").DataSent = 42
	camp.AddFlow(fl)
	_, _, tc, _, _ := camp.Counters()
	tc.ByCC["bbr"].DataSent = 0
	tc.CC("reno")
	_, _, tc2, _, _ := camp.Counters()
	if tc2.ByCC["bbr"].DataSent != 42 {
		t.Fatal("Counters returned an aliased ByCC map")
	}
	if _, leaked := tc2.ByCC["reno"]; leaked {
		t.Fatal("mutating a Counters snapshot leaked into the campaign")
	}
}

func TestExposerEmitsPerCCLines(t *testing.T) {
	camp := NewCampaign()
	fl := NewFlow()
	fl.TCP.CC("cubic").Flows = 1
	fl.TCP.CC("cubic").Retransmissions = 9
	fl.TCP.CC("bbr").Flows = 2
	camp.AddFlow(fl)
	var buf bytes.Buffer
	e := NewTextExposer(&buf, "hsr_")
	e.Campaign(camp)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`hsr_tcp_cc_flows_total{cc="cubic"} 1`,
		`hsr_tcp_cc_retransmissions_total{cc="cubic"} 9`,
		`hsr_tcp_cc_flows_total{cc="bbr"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Sorted by variant name: bbr lines precede cubic lines.
	if strings.Index(out, `cc="bbr"`) > strings.Index(out, `cc="cubic"`) {
		t.Error("per-CC lines not sorted by variant name")
	}
}

func TestReportCCRoundTrip(t *testing.T) {
	r := &Report{
		Tool: "test", Seed: 1,
		CC: &CCReport{Groups: []CCGroup{{
			Experiment: "fairness", Label: "reno/clean", JainIndex: 0.97,
			Flows: []CCFlowResult{{ID: "f0", CC: "reno", ThroughputPps: 12.5, Retransmissions: 3}},
		}}},
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.CC, got.CC) {
		t.Fatalf("CC section changed through JSON:\nin:  %+v\nout: %+v", r.CC, got.CC)
	}
}
