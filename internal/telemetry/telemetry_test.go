package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestDistMergeMatchesDirectAdds(t *testing.T) {
	var a, b, direct Dist
	for i := 0; i < 100; i++ {
		x := float64(i%17) * 1.5
		if i < 40 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		direct.Add(x)
	}
	a.Merge(&b)
	if a.N() != direct.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), direct.N())
	}
	if math.Abs(a.Mean()-direct.Mean()) > 1e-9 {
		t.Errorf("merged mean = %v, want %v", a.Mean(), direct.Mean())
	}
	if a.Max() != direct.Max() {
		t.Errorf("merged max = %v, want %v", a.Max(), direct.Max())
	}
}

func TestDistJSONEmptyAndSingle(t *testing.T) {
	var d Dist
	got, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"n":0}` {
		t.Errorf("empty Dist JSON = %s", got)
	}
	// A single sample must not leak NaN (std of n=1) into the JSON.
	d.Add(3)
	got, err = json.Marshal(d)
	if err != nil {
		t.Fatalf("single-sample Dist marshal: %v", err)
	}
	if strings.Contains(string(got), "NaN") {
		t.Errorf("single-sample Dist JSON contains NaN: %s", got)
	}
	var parsed struct {
		N    int     `json:"n"`
		Mean float64 `json:"mean"`
		Std  float64 `json:"std"`
	}
	if err := json.Unmarshal(got, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.N != 1 || parsed.Mean != 3 || parsed.Std != 0 {
		t.Errorf("single-sample Dist JSON = %s", got)
	}
}

func TestHistBucketsAndMerge(t *testing.T) {
	h := NewHist(1, 2, 4)
	for _, x := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Add(x)
	}
	want := []int64{2, 1, 1, 1} // <=1, <=2, <=4, overflow
	if !reflect.DeepEqual(h.Counts, want) {
		t.Fatalf("Counts = %v, want %v", h.Counts, want)
	}
	var empty Hist
	empty.Add(42) // silently discarded
	if empty.Total() != 0 {
		t.Errorf("zero-value Hist bucketed a sample")
	}
	empty.Merge(&h) // adopts shape
	if !reflect.DeepEqual(empty.Counts, want) {
		t.Errorf("adopting merge Counts = %v, want %v", empty.Counts, want)
	}
	empty.Merge(&h)
	if empty.Total() != 2*h.Total() {
		t.Errorf("second merge Total = %d, want %d", empty.Total(), 2*h.Total())
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched-shape merge did not panic")
		}
	}()
	bad := NewHist(1, 2)
	bad.Counts[0] = 1
	empty.Merge(&bad)
}

func TestKernelMergeAndDerived(t *testing.T) {
	a := Kernel{Events: 10, Scheduled: 12, PoolHits: 8, PoolMisses: 2,
		MaxPending: 5, Cascades: 3, RearmsInPlace: 2, Batches: 4, BatchEvents: 9,
		MaxBatch: 6, MaxSlot: 2, VirtualNS: 100, BudgetEvents: 40}
	b := Kernel{Events: 20, Scheduled: 21, PoolHits: 0, PoolMisses: 10,
		MaxPending: 9, Cascades: 1, RearmsInPlace: 5, Batches: 2, BatchEvents: 11,
		MaxBatch: 3, MaxSlot: 7, VirtualNS: 50, BudgetEvents: 60}
	a.Merge(&b)
	if a.Events != 30 || a.Scheduled != 33 || a.MaxPending != 9 {
		t.Fatalf("merged Kernel = %+v", a)
	}
	if a.Cascades != 4 || a.RearmsInPlace != 7 || a.Batches != 6 || a.BatchEvents != 20 {
		t.Fatalf("merged wheel counters = %+v", a)
	}
	if a.MaxBatch != 6 || a.MaxSlot != 7 {
		t.Fatalf("merged wheel gauges = %+v", a)
	}
	if got := a.PoolHitRate(); got != 0.4 {
		t.Errorf("PoolHitRate = %v, want 0.4", got)
	}
	if got := a.BudgetHeadroom(); got != 0.7 {
		t.Errorf("BudgetHeadroom = %v, want 0.7", got)
	}
	if (&Kernel{}).PoolHitRate() != 0 {
		t.Error("empty PoolHitRate not 0")
	}
	if (&Kernel{}).BudgetHeadroom() != 1 {
		t.Error("unbudgeted BudgetHeadroom not 1")
	}
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"pool_hit_rate", "budget_headroom", "events"} {
		if !strings.Contains(string(blob), key) {
			t.Errorf("Kernel JSON missing %q: %s", key, blob)
		}
	}
}

func TestCampaignAddFlow(t *testing.T) {
	c := NewCampaign()
	f1 := NewFlow()
	f1.Kernel.Events = 5
	f1.TCP.Flows = 1
	f1.TCP.Cwnd.Add(4)
	f1.Net.Data.Offered = 7
	f1.Faults.Schedules = 1
	f1.WallNS = 100
	f2 := NewFlow()
	f2.Kernel.Events = 3
	f2.TCP.Flows = 1
	f2.TCP.Cwnd.Add(8)
	c.AddFlow(f1)
	c.AddFlow(f2)
	n, k, tcp, net, faults := c.Counters()
	if n != 2 || k.Events != 8 || tcp.Flows != 2 || net.Data.Offered != 7 || faults.Schedules != 1 {
		t.Fatalf("Counters = (%d, %+v, ..., %+v, %+v)", n, k, net, faults)
	}
	if tcp.Cwnd.N() != 2 || tcp.Cwnd.Mean() != 6 {
		t.Errorf("merged Cwnd = n=%d mean=%v", tcp.Cwnd.N(), tcp.Cwnd.Mean())
	}
}

func TestFlightRecorderRingAndTrace(t *testing.T) {
	r := NewFlightRecorder(3)
	// Non-transition events are filtered out.
	r.Record(trace.Event{Type: trace.EvDataSend, At: time.Second})
	if r.Len() != 0 {
		t.Fatalf("non-transition event retained: Len=%d", r.Len())
	}
	for i := 0; i < 5; i++ {
		r.Record(trace.Event{Type: trace.EvTimeout, At: time.Duration(i) * time.Second, Seq: int64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Overwritten() != 2 {
		t.Fatalf("Overwritten = %d, want 2", r.Overwritten())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := int64(i + 2); ev.Seq != want {
			t.Errorf("event %d Seq = %d, want %d (chronological order)", i, ev.Seq, want)
		}
	}

	// The dump must round-trip through the standard JSONL codec.
	ft := r.Trace(trace.FlowMeta{ID: "fr-test", Seed: 7})
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, ft); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta.ID != "fr-test" || len(back.Events) != 3 {
		t.Fatalf("roundtrip = %q with %d events", back.Meta.ID, len(back.Events))
	}

	r.Reset()
	if r.Len() != 0 || r.Overwritten() != 0 {
		t.Errorf("Reset left Len=%d Overwritten=%d", r.Len(), r.Overwritten())
	}

	r.SetKeepAll(true)
	r.Record(trace.Event{Type: trace.EvDataSend})
	if r.Len() != 1 {
		t.Errorf("keep-all recorder filtered a data-send event")
	}
}

func TestFlightRecorderRecordDoesNotAllocate(t *testing.T) {
	r := NewFlightRecorder(64)
	ev := trace.Event{Type: trace.EvTimeout, Seq: 1}
	allocs := testing.AllocsPerRun(1000, func() { r.Record(ev) })
	if allocs != 0 {
		t.Fatalf("Record allocates %v allocs/op, want 0", allocs)
	}
}

func TestReportRoundTrip(t *testing.T) {
	camp := NewCampaign()
	f := NewFlow()
	f.Kernel.Events = 11
	f.TCP.Flows = 1
	camp.AddFlow(f)
	rep := &Report{
		Tool: "hsrbench", Version: "test", Seed: 42, Campaign: camp,
		Tasks: []TaskReport{
			{Name: "campaigns", Status: "ok", WallMS: 12.5},
			{Name: "fig3", Status: "skipped", Error: "dependency failed"},
		},
		Resources: Resources{WallMS: 100, Mallocs: 5},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "hsrbench" || back.Seed != 42 || len(back.Tasks) != 2 {
		t.Fatalf("roundtrip report = %+v", back)
	}
	if back.Campaign == nil || back.Campaign.Kernel.Events != 11 {
		t.Fatalf("roundtrip campaign = %+v", back.Campaign)
	}
	if back.Tasks[1].Status != "skipped" || back.Tasks[1].Error == "" {
		t.Errorf("roundtrip task = %+v", back.Tasks[1])
	}
}
