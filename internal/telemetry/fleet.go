package telemetry

// Fleet counts distributed-campaign activity on a coordinator: how the
// flow-range work units moved through the worker fleet and how often the
// robustness machinery (retries, reassignment, hedging, local fallback)
// had to step in. Every field is a host-side resource counter — like wall
// clock, none of them influence the simulated results, which stay
// byte-identical at any fleet size and under any failure schedule.
type Fleet struct {
	// Workers is the configured fleet size (gauge, max-merged).
	Workers int64 `json:"workers"`
	// Units counts the flow-range work units planned; UnitsDispatched counts
	// dispatch attempts to remote workers (including retries and hedges);
	// UnitsCompleted counts units whose result was accepted (exactly once
	// per unit); UnitsLocal counts units the coordinator executed itself —
	// retry-budget exhaustion or degraded (workerless) mode.
	Units           int64 `json:"units"`
	UnitsDispatched int64 `json:"units_dispatched"`
	UnitsCompleted  int64 `json:"units_completed"`
	UnitsLocal      int64 `json:"units_local"`
	// Retries counts unit re-dispatches after a failed or timed-out attempt;
	// Reassignments counts units whose accepted result came from a different
	// worker than their first attempt; Hedges counts duplicate dispatches of
	// straggling tail units; DuplicateResults counts results discarded
	// because the unit had already completed (hedges and reassigned units
	// racing — harmless, since unit results are deterministic).
	Retries          int64 `json:"retries"`
	Reassignments    int64 `json:"reassignments"`
	Hedges           int64 `json:"hedges"`
	DuplicateResults int64 `json:"duplicate_results"`
	// WorkersLost counts healthy->unhealthy transitions (heartbeat or unit
	// failures past the tolerance); WorkersReadmitted counts the reverse.
	WorkersLost       int64 `json:"workers_lost"`
	WorkersReadmitted int64 `json:"workers_readmitted"`
	// Degraded counts campaigns that lost every worker and finished locally.
	Degraded int64 `json:"degraded"`
}

// Merge folds other into f: counters sum, Workers (a gauge) takes the max.
func (f *Fleet) Merge(other *Fleet) {
	if other.Workers > f.Workers {
		f.Workers = other.Workers
	}
	f.Units += other.Units
	f.UnitsDispatched += other.UnitsDispatched
	f.UnitsCompleted += other.UnitsCompleted
	f.UnitsLocal += other.UnitsLocal
	f.Retries += other.Retries
	f.Reassignments += other.Reassignments
	f.Hedges += other.Hedges
	f.DuplicateResults += other.DuplicateResults
	f.WorkersLost += other.WorkersLost
	f.WorkersReadmitted += other.WorkersReadmitted
	f.Degraded += other.Degraded
}
