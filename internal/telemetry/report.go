package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TaskReport is the per-experiment slice of a Report: scheduling outcome
// plus resource accounting for one DAG task.
type TaskReport struct {
	Name   string `json:"name"`
	Status string `json:"status"` // "ok", "failed" or "skipped"
	Error  string `json:"error,omitempty"`
	// WallMS is host wall time spent inside the task's Run (resource
	// metric, not reproducible).
	WallMS float64 `json:"wall_ms"`
	// Mallocs/AllocBytes are per-task heap-allocation deltas. They are only
	// attributable when tasks run sequentially (-jobs 1) and are omitted
	// otherwise.
	Mallocs    uint64 `json:"mallocs,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
}

// Resources is process-level resource accounting for one campaign run.
// Everything in it is a host measurement: useful for tracking cost, never
// reproducible bit for bit.
type Resources struct {
	WallMS          float64 `json:"wall_ms"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	Mallocs         uint64  `json:"mallocs"`
	NumGC           uint32  `json:"num_gc"`
	// VirtualPerWall is simulated seconds per wall second across the
	// campaign flows (sum of flow virtual time over campaign wall time);
	// 0 when no campaign telemetry was collected.
	VirtualPerWall float64 `json:"virtual_per_wall,omitempty"`
}

// Report is the typed top-level document hsrbench -metrics writes: campaign
// counter totals (deterministic for a given seed at any parallelism),
// per-task outcomes, and process resource usage.
type Report struct {
	Tool    string `json:"tool"`
	Version string `json:"version"`
	Seed    int64  `json:"seed"`
	// Campaign totals the kernel / TCP / netem / fault counters over every
	// campaign flow that carried a telemetry bundle; nil when no campaign
	// ran (e.g. -run fig12 alone).
	Campaign *Campaign `json:"campaign,omitempty"`
	// Cache reports flow-result-cache activity (hsrbench -cache); nil when
	// no cache was configured.
	Cache *Cache `json:"cache,omitempty"`
	// Fleet reports distributed-campaign activity (shards, retries,
	// reassignments, degraded mode) when the run executed on a coordinator;
	// nil for single-node runs. Like Resources it is host-side accounting:
	// the campaign counters above stay byte-identical with or without it.
	Fleet *Fleet `json:"fleet,omitempty"`
	// CC carries the shared-bottleneck congestion-control results (Jain's
	// fairness index and per-flow throughput by variant) when the run
	// included the fairness or ccmix experiments; nil otherwise. Derived
	// entirely from single-simulator groups, so it is deterministic across
	// surfaces and worker counts.
	CC        *CCReport    `json:"cc,omitempty"`
	Tasks     []TaskReport `json:"tasks"`
	Resources Resources    `json:"resources"`
}

// CCReport is the congestion-control section of a Report: one entry per
// shared-bottleneck group run, in deterministic (experiment, label) order.
type CCReport struct {
	Groups []CCGroup `json:"groups"`
}

// CCGroup is one shared-bottleneck contention group's summary.
type CCGroup struct {
	// Experiment is the catalog experiment that ran the group ("fairness"
	// or "ccmix"); Label distinguishes the group within it (variant name
	// plus channel condition, e.g. "cubic/storm" or "mix/clean").
	Experiment string `json:"experiment"`
	Label      string `json:"label"`
	// JainIndex is Jain's fairness index over the group's per-flow
	// throughputs: 1 is perfectly fair, 1/n maximally unfair.
	JainIndex float64 `json:"jain_index"`
	Flows     []CCFlowResult `json:"flows"`
}

// CCFlowResult is one contending flow's outcome.
type CCFlowResult struct {
	ID              string  `json:"id"`
	CC              string  `json:"cc"`
	ThroughputPps   float64 `json:"throughput_pps"`
	Retransmissions int64   `json:"retransmissions"`
	Timeouts        int64   `json:"timeouts"`
	FastRetransmits int64   `json:"fast_retransmits"`
}

// WriteJSON writes the report as indented JSON. The counter sections are
// deterministic; see the field docs for the wall-clock exceptions.
func (r *Report) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("telemetry: encode report: %w", err)
	}
	return bw.Flush()
}

// ReadReport parses a report written by WriteJSON (tests and tooling).
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("telemetry: decode report: %w", err)
	}
	return &r, nil
}
