package telemetry

import (
	"strings"
	"testing"
)

func TestTextExposerLines(t *testing.T) {
	camp := NewCampaign()
	f := NewFlow()
	f.Kernel.Events = 100
	f.TCP.Flows = 1
	f.TCP.DataSent = 42
	camp.AddFlow(f)

	var b strings.Builder
	e := NewTextExposer(&b, "svc_")
	e.Comment("campaign totals")
	e.Int("queue_depth", 3)
	e.Float("virtual_per_wall", 2.5)
	e.Campaign(camp)
	e.Cache(&Cache{Hits: 7, Misses: 2, Dedups: 1, Evictions: 4})
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# campaign totals\n",
		"svc_queue_depth 3\n",
		"svc_virtual_per_wall 2.5\n",
		"svc_campaign_flows_total 1\n",
		"svc_kernel_events_total 100\n",
		"svc_tcp_data_sent_total 42\n",
		"svc_cache_hits_total 7\n",
		"svc_cache_dedups_total 1\n",
		"svc_cache_evictions_total 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Identical state must scrape byte-identically.
	var b2 strings.Builder
	e2 := NewTextExposer(&b2, "svc_")
	e2.Comment("campaign totals")
	e2.Int("queue_depth", 3)
	e2.Float("virtual_per_wall", 2.5)
	e2.Campaign(camp)
	e2.Cache(&Cache{Hits: 7, Misses: 2, Dedups: 1, Evictions: 4})
	if err := e2.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if b2.String() != out {
		t.Error("two scrapes of identical state differ")
	}
}

func TestTextExposerBuildInfoAndDist(t *testing.T) {
	var d Dist
	d.Add(2)
	d.Add(10)
	d.Add(6)

	var b strings.Builder
	e := NewTextExposer(&b, "svc_")
	e.BuildInfo("v1.2.3")
	e.IntLabeled("workers", 4, "role", "coordinator", "zone", "a")
	e.Dist("job_queue_wait_ms", &d)
	var empty Dist
	e.Dist("unit_duration_ms", &empty)
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`svc_build_info{version="v1.2.3"} 1` + "\n",
		`svc_workers{role="coordinator",zone="a"} 4` + "\n",
		"svc_job_queue_wait_ms_count 3\n",
		"svc_job_queue_wait_ms_sum 18\n",
		"svc_job_queue_wait_ms_min 2\n",
		"svc_job_queue_wait_ms_max 10\n",
		"svc_unit_duration_ms_count 0\n",
		"svc_unit_duration_ms_sum 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// An empty distribution must not leak NaN min/max lines.
	if strings.Contains(out, "unit_duration_ms_min") || strings.Contains(out, "NaN") {
		t.Errorf("empty distribution leaked min/max or NaN:\n%s", out)
	}

	// A JSON round trip (how reports carry distributions) must expose the
	// same count/sum the live accumulator did.
	var b2 strings.Builder
	raw, err := d.MarshalJSON()
	if err != nil {
		t.Fatalf("marshal dist: %v", err)
	}
	var parsed Dist
	if err := parsed.UnmarshalJSON(raw); err != nil {
		t.Fatalf("unmarshal dist: %v", err)
	}
	e2 := NewTextExposer(&b2, "svc_")
	e2.Dist("job_queue_wait_ms", &parsed)
	if err := e2.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for _, want := range []string{
		"svc_job_queue_wait_ms_count 3\n",
		"svc_job_queue_wait_ms_sum 18\n",
	} {
		if !strings.Contains(b2.String(), want) {
			t.Errorf("parsed-dist exposition missing %q:\n%s", want, b2.String())
		}
	}
}

func TestCampaignMerge(t *testing.T) {
	a, b := NewCampaign(), NewCampaign()
	for i := 0; i < 3; i++ {
		f := NewFlow()
		f.Kernel.Events = int64(10 * (i + 1))
		f.TCP.Flows = 1
		f.TCP.Cwnd.Add(float64(i + 1))
		f.TCP.CwndHist.Add(float64(i + 1))
		if i < 2 {
			a.AddFlow(f)
		} else {
			b.AddFlow(f)
		}
	}
	a.Merge(b)
	flows, k, tc, _, _ := a.Counters()
	if flows != 3 || k.Events != 60 || tc.Flows != 3 {
		t.Errorf("merged totals: flows=%d events=%d tcpflows=%d", flows, k.Events, tc.Flows)
	}
	if tc.Cwnd.N() != 3 {
		t.Errorf("merged cwnd samples = %d, want 3", tc.Cwnd.N())
	}
	if got := tc.CwndHist.Total(); got != 3 {
		t.Errorf("merged cwnd hist total = %d, want 3", got)
	}
	// Merging nil and self are no-ops.
	a.Merge(nil)
	a.Merge(a)
	if flows2, _, _, _, _ := a.Counters(); flows2 != 3 {
		t.Errorf("self/nil merge changed totals: %d", flows2)
	}
}
