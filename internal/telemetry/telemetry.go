// Package telemetry is the simulator's observability layer: allocation-
// conscious metrics (counters, streaming distributions, fixed-bound
// histograms), a bounded flight recorder of per-flow state transitions, and
// typed JSON reports.
//
// The layer is compiled in everywhere but costs ~nothing when disabled.
// Instrumented components (the sim kernel, tcp.Conn, the netem links, the
// fault injectors) hold a nil telemetry pointer by default and guard every
// update with a single predictable nil check — the hot paths allocate
// nothing and the campaign output is byte-identical whether or not the
// check compiles in a telemetry sink. When a sink is attached, updates are
// plain integer field increments into caller-owned structs: still zero
// allocations per event.
//
// Aggregation is deterministic by construction: every per-flow Flow bundle
// is produced by a single-threaded simulation, and Campaign.AddFlow merges
// flows in campaign order after the parallel phase has completed, so the
// counter sections of a report are bit-identical across any -jobs setting.
// Wall-clock fields (Flow.WallNS, Campaign.WallNS) are the one documented
// exception: they measure host resources, not simulated behaviour.
package telemetry

import (
	"encoding/json"
	"sync"

	"repro/internal/stats"
)

// Dist is a streaming distribution summary (count, mean, standard
// deviation, min, max) with deterministic JSON marshalling. The zero value
// is an empty distribution ready for use; Add is allocation-free.
type Dist struct {
	r stats.Running
	// parsed holds a summary decoded from JSON (a report round trip). The
	// streaming accumulator cannot be reconstructed exactly from its summary
	// (the inverse mappings round), so the parsed form is kept verbatim and
	// re-emitted by MarshalJSON: a report survives any number of read/write
	// round trips byte for byte. A parsed Dist is a read-only summary —
	// Add or Merge on one discards the parsed part.
	parsed *distSummary
}

// distSummary mirrors the marshalled form of a non-empty distribution.
type distSummary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Add folds one sample into the distribution.
func (d *Dist) Add(x float64) { d.parsed = nil; d.r.Add(x) }

// Merge folds other into d (Chan et al. parallel combine, via
// stats.Running.Merge). Merge order must be fixed for bit-identical
// results; campaign aggregation merges in flow order.
func (d *Dist) Merge(other *Dist) { d.parsed = nil; d.r.Merge(&other.r) }

// N returns the number of samples added.
func (d *Dist) N() int {
	if d.parsed != nil {
		return d.parsed.N
	}
	return d.r.N()
}

// Mean returns the sample mean, or NaN when empty.
func (d *Dist) Mean() float64 {
	if d.parsed != nil {
		return d.parsed.Mean
	}
	return d.r.Mean()
}

// Max returns the largest sample, or NaN when empty.
func (d *Dist) Max() float64 {
	if d.parsed != nil {
		return d.parsed.Max
	}
	return d.r.Max()
}

// Min returns the smallest sample, or NaN when empty.
func (d *Dist) Min() float64 {
	if d.parsed != nil {
		return d.parsed.Min
	}
	return d.r.Min()
}

// Sum returns the sum of all samples (0 when empty). A parsed (read-only)
// summary reconstructs it as mean*n — exact up to float rounding, which is
// fine for the Prometheus exposition it feeds.
func (d *Dist) Sum() float64 {
	if d.parsed != nil {
		return d.parsed.Mean * float64(d.parsed.N)
	}
	return d.r.Sum()
}

// MarshalJSON emits {"n":0} for an empty distribution and a flat summary
// object otherwise. NaN never leaks into the JSON: the standard deviation
// of fewer than two samples is reported as 0.
func (d Dist) MarshalJSON() ([]byte, error) {
	if d.parsed != nil {
		return json.Marshal(d.parsed)
	}
	if d.r.N() == 0 {
		return []byte(`{"n":0}`), nil
	}
	std := d.r.StdDev()
	if d.r.N() < 2 {
		std = 0
	}
	return json.Marshal(distSummary{d.r.N(), d.r.Mean(), std, d.r.Min(), d.r.Max()})
}

// State returns the distribution's exact accumulator state for wire
// transport. Unlike the JSON summary (which is deliberately lossy and
// read-only after a round trip), a state snapshot restored with RestoreDist
// merges and accumulates exactly like the original — the distributed
// campaign path depends on this to keep remote flows byte-identical to
// local ones. A parsed (read-only) Dist has no accumulator to snapshot and
// returns the zero state.
func (d *Dist) State() stats.RunningState { return d.r.State() }

// RestoreDist reconstructs a live distribution from a State snapshot.
func RestoreDist(s stats.RunningState) Dist { return Dist{r: stats.RestoreRunning(s)} }

// UnmarshalJSON restores a distribution written by MarshalJSON as a
// read-only summary; see the parsed field for the round-trip contract.
func (d *Dist) UnmarshalJSON(raw []byte) error {
	var s distSummary
	if err := json.Unmarshal(raw, &s); err != nil {
		return err
	}
	d.r = stats.Running{}
	if s.N == 0 {
		d.parsed = nil
		return nil
	}
	d.parsed = &s
	return nil
}

// Kernel collects event-kernel metrics for one simulation (or, after
// merging, a whole campaign). Events counts executed events; Scheduled
// counts timing-wheel insertions (not Reschedule re-arms); PoolHits/
// PoolMisses track the fire-and-forget event free list; the wheel counters
// (Cascades, RearmsInPlace, Batches, MaxBatch, MaxSlot) describe scheduler
// health: how often events were redistributed from coarse wheel levels, how
// often a periodic timer re-armed without moving, and how dense the per-tick
// dispatch batches ran.
type Kernel struct {
	Events     int64 `json:"events"`
	Scheduled  int64 `json:"scheduled"`
	PoolHits   int64 `json:"pool_hits"`
	PoolMisses int64 `json:"pool_misses"`
	// MaxPending is the peak number of scheduled, not-yet-fired events.
	MaxPending int64 `json:"max_pending"`
	// Cascades counts events redistributed from a coarse wheel level toward
	// the finest one as virtual time advanced past their slot.
	Cascades int64 `json:"cascades"`
	// RearmsInPlace counts Reschedule calls that kept the timer in its
	// current wheel slot, skipping the unlink/relink entirely.
	RearmsInPlace int64 `json:"rearms_in_place"`
	// Batches counts non-empty per-tick dispatch batches; BatchEvents is the
	// events dispatched through them (BatchEvents/Batches = mean density).
	Batches     int64 `json:"batches"`
	BatchEvents int64 `json:"batch_events"`
	// MaxBatch is the largest single dispatch batch; MaxSlot the largest
	// single wheel-slot occupancy observed while draining.
	MaxBatch         int64 `json:"max_batch"`
	MaxSlot          int64 `json:"max_slot_occupancy"`
	TimerStops       int64 `json:"timer_stops"`
	TimerReschedules int64 `json:"timer_reschedules"`
	// VirtualNS is the total virtual time simulated, in nanoseconds.
	VirtualNS int64 `json:"virtual_ns"`
	// BudgetEvents is the sum of configured kernel event budgets
	// (0 = unlimited); BudgetHeadroom derives from it.
	BudgetEvents int64 `json:"budget_events"`
}

// PoolHitRate returns the fraction of fire-and-forget schedules served from
// the free list, or 0 when none were scheduled.
func (k *Kernel) PoolHitRate() float64 {
	total := k.PoolHits + k.PoolMisses
	if total == 0 {
		return 0
	}
	return float64(k.PoolHits) / float64(total)
}

// BudgetHeadroom returns the unused fraction of the event budget
// (1 = untouched, 0 = exhausted), or 1 when no budget was configured.
func (k *Kernel) BudgetHeadroom() float64 {
	if k.BudgetEvents <= 0 {
		return 1
	}
	h := 1 - float64(k.Events)/float64(k.BudgetEvents)
	if h < 0 {
		return 0
	}
	return h
}

// Merge folds other into k: counters sum, the Max* gauges take the maximum.
func (k *Kernel) Merge(other *Kernel) {
	k.Events += other.Events
	k.Scheduled += other.Scheduled
	k.PoolHits += other.PoolHits
	k.PoolMisses += other.PoolMisses
	if other.MaxPending > k.MaxPending {
		k.MaxPending = other.MaxPending
	}
	k.Cascades += other.Cascades
	k.RearmsInPlace += other.RearmsInPlace
	k.Batches += other.Batches
	k.BatchEvents += other.BatchEvents
	if other.MaxBatch > k.MaxBatch {
		k.MaxBatch = other.MaxBatch
	}
	if other.MaxSlot > k.MaxSlot {
		k.MaxSlot = other.MaxSlot
	}
	k.TimerStops += other.TimerStops
	k.TimerReschedules += other.TimerReschedules
	k.VirtualNS += other.VirtualNS
	k.BudgetEvents += other.BudgetEvents
}

// MarshalJSON adds the derived pool_hit_rate and budget_headroom fields to
// the raw counters; both derive from deterministic integers, so the JSON is
// reproducible.
func (k Kernel) MarshalJSON() ([]byte, error) {
	type raw Kernel // shed the method to avoid recursion
	return json.Marshal(struct {
		raw
		PoolHitRate    float64 `json:"pool_hit_rate"`
		BudgetHeadroom float64 `json:"budget_headroom"`
	}{raw(k), k.PoolHitRate(), k.BudgetHeadroom()})
}

// TCP collects per-flow endpoint metrics mirroring the paper's measured
// quantities: the recovery-phase retransmission loss of Fig 3
// (RecoveryRetxDrops / RecoveryRetransmits), the timeout counters of Fig 4,
// and the ACK-loss quantities of Fig 6 (AcksSent / AcksDropped).
type TCP struct {
	Flows              int64 `json:"flows"`
	DataSent           int64 `json:"data_sent"`
	Retransmissions    int64 `json:"retransmissions"`
	DataDropped        int64 `json:"data_dropped"`
	UniqueDelivered    int64 `json:"unique_delivered"`
	DupDelivered       int64 `json:"dup_delivered"`
	AcksSent           int64 `json:"acks_sent"`
	AcksReceived       int64 `json:"acks_received"`
	AcksDropped        int64 `json:"acks_dropped"`
	Timeouts           int64 `json:"timeouts"` // individual RTO expirations
	FastRetransmits    int64 `json:"fast_retransmits"`
	SpuriousRecoveries int64 `json:"spurious_recoveries"` // Eifel undo events
	// RecoveryPhases counts entries into timeout recovery (the paper's
	// timeout sequences); RecoveryNS is the total virtual time spent inside.
	RecoveryPhases int64 `json:"recovery_phases"`
	RecoveryNS     int64 `json:"recovery_ns"`
	// RecoveryRetransmits / RecoveryRetxDrops are the Fig 3 q domain: data
	// transmissions sent inside timeout recovery and how many of them the
	// channel dropped.
	RecoveryRetransmits int64 `json:"recovery_retransmits"`
	RecoveryRetxDrops   int64 `json:"recovery_retx_drops"`

	// Cwnd summarizes the congestion window sampled at every processed ACK;
	// CwndHist buckets the same samples; BackoffHist buckets the backoff
	// exponent observed at each RTO expiration.
	Cwnd        Dist `json:"cwnd"`
	CwndHist    Hist `json:"cwnd_hist"`
	BackoffHist Hist `json:"backoff_hist"`

	// ByCC breaks the headline counters down by congestion-control variant
	// name ("reno", "cubic", ...). Everything in a CCStats is an integer
	// counter or an exact histogram, so the breakdown — unlike a Dist —
	// merges order-independently and survives JSON round trips bit for
	// bit, which keeps mixed-CC campaigns byte-identical at any -jobs or
	// worker count. Nil until the first flow reports a variant.
	ByCC map[string]*CCStats `json:"by_cc,omitempty"`
}

// CCStats is the per-congestion-control slice of the TCP section: the
// counters a fairness analysis needs, labeled by variant name.
type CCStats struct {
	Flows              int64 `json:"flows"`
	DataSent           int64 `json:"data_sent"`
	Retransmissions    int64 `json:"retransmissions"`
	UniqueDelivered    int64 `json:"unique_delivered"`
	Timeouts           int64 `json:"timeouts"`
	FastRetransmits    int64 `json:"fast_retransmits"`
	SpuriousRecoveries int64 `json:"spurious_recoveries"`
	RecoveryPhases     int64 `json:"recovery_phases"`
	// CwndHist buckets this variant's per-ACK window samples (the same
	// bounds as TCP.CwndHist), so variant window shapes are comparable in
	// one report.
	CwndHist Hist `json:"cwnd_hist"`
}

// Merge folds other into s. Integer adds and exact histogram adds only, so
// merge order never changes the result.
func (s *CCStats) Merge(other *CCStats) {
	s.Flows += other.Flows
	s.DataSent += other.DataSent
	s.Retransmissions += other.Retransmissions
	s.UniqueDelivered += other.UniqueDelivered
	s.Timeouts += other.Timeouts
	s.FastRetransmits += other.FastRetransmits
	s.SpuriousRecoveries += other.SpuriousRecoveries
	s.RecoveryPhases += other.RecoveryPhases
	s.CwndHist.Merge(&other.CwndHist)
}

// CC returns the named per-variant slice, creating it (with the standard
// cwnd histogram bounds) on first use.
func (t *TCP) CC(name string) *CCStats {
	if t.ByCC == nil {
		t.ByCC = make(map[string]*CCStats)
	}
	s := t.ByCC[name]
	if s == nil {
		s = &CCStats{CwndHist: NewHist(1, 2, 4, 8, 16, 32, 64, 128)}
		t.ByCC[name] = s
	}
	return s
}

// cloneCCStats deep-copies one per-variant slice.
func cloneCCStats(s *CCStats) *CCStats {
	cp := *s
	cp.CwndHist = cloneHist(s.CwndHist)
	return &cp
}

// cloneByCC deep-copies a per-variant breakdown (nil stays nil).
func cloneByCC(m map[string]*CCStats) map[string]*CCStats {
	if m == nil {
		return nil
	}
	out := make(map[string]*CCStats, len(m))
	for name, s := range m {
		out[name] = cloneCCStats(s)
	}
	return out
}

// NewTCP returns a TCP metrics block with the standard cwnd and backoff
// histogram bounds installed.
func NewTCP() *TCP {
	return &TCP{
		CwndHist:    NewHist(1, 2, 4, 8, 16, 32, 64, 128),
		BackoffHist: NewHist(0, 1, 2, 3, 4, 5, 6),
	}
}

// Merge folds other into t.
func (t *TCP) Merge(other *TCP) {
	t.Flows += other.Flows
	t.DataSent += other.DataSent
	t.Retransmissions += other.Retransmissions
	t.DataDropped += other.DataDropped
	t.UniqueDelivered += other.UniqueDelivered
	t.DupDelivered += other.DupDelivered
	t.AcksSent += other.AcksSent
	t.AcksReceived += other.AcksReceived
	t.AcksDropped += other.AcksDropped
	t.Timeouts += other.Timeouts
	t.FastRetransmits += other.FastRetransmits
	t.SpuriousRecoveries += other.SpuriousRecoveries
	t.RecoveryPhases += other.RecoveryPhases
	t.RecoveryNS += other.RecoveryNS
	t.RecoveryRetransmits += other.RecoveryRetransmits
	t.RecoveryRetxDrops += other.RecoveryRetxDrops
	t.Cwnd.Merge(&other.Cwnd)
	t.CwndHist.Merge(&other.CwndHist)
	t.BackoffHist.Merge(&other.BackoffHist)
	for name, o := range other.ByCC {
		// Map iteration order is irrelevant here: every CCStats field
		// merges by integer addition, which commutes bitwise.
		if t.ByCC == nil {
			t.ByCC = make(map[string]*CCStats, len(other.ByCC))
		}
		if s := t.ByCC[name]; s != nil {
			s.Merge(o)
		} else {
			t.ByCC[name] = cloneCCStats(o)
		}
	}
}

// LinkCounters is the telemetry view of one link direction, harvested from
// netem.LinkStats at the end of a flow (zero per-packet overhead).
type LinkCounters struct {
	Offered      int64 `json:"offered"`
	Delivered    int64 `json:"delivered"`
	ChannelDrops int64 `json:"channel_drops"`
	QueueDrops   int64 `json:"queue_drops"`
	PeakBacklog  int64 `json:"peak_backlog"` // peak queued packets (max-merged)
	// VectorBursts/VectorPackets count window fills whose admission and
	// delay/loss sampling ran through the vectorized burst path
	// (netem.Link.BeginBurstN) and the packets primed that way.
	VectorBursts  int64 `json:"vector_bursts"`
	VectorPackets int64 `json:"vector_packets"`
}

// Merge folds other into c.
func (c *LinkCounters) Merge(other *LinkCounters) {
	c.Offered += other.Offered
	c.Delivered += other.Delivered
	c.ChannelDrops += other.ChannelDrops
	c.QueueDrops += other.QueueDrops
	if other.PeakBacklog > c.PeakBacklog {
		c.PeakBacklog = other.PeakBacklog
	}
	c.VectorBursts += other.VectorBursts
	c.VectorPackets += other.VectorPackets
}

// Net groups link telemetry by direction: Data is the downlink (data
// segments), Ack the uplink (cumulative ACKs).
type Net struct {
	Data LinkCounters `json:"data"`
	Ack  LinkCounters `json:"ack"`
}

// Merge folds other into n.
func (n *Net) Merge(other *Net) {
	n.Data.Merge(&other.Data)
	n.Ack.Merge(&other.Ack)
}

// Channel counts the cellular channel's compiled-timeline activity: how
// many times the timeline was compiled (once at construction plus once per
// AddOutages), how many piecewise-constant segments the compilations
// produced, and how the per-packet cursor lookups resolved — a cache hit in
// the current segment (Queries minus Advances minus Fallbacks), a short
// monotonic walk forward (Advances), or a binary-search fallback for
// out-of-order queries (Fallbacks). Deterministic for a given seed.
type Channel struct {
	Compiles        int64 `json:"compiles"`
	Segments        int64 `json:"segments"`
	CursorQueries   int64 `json:"cursor_queries"`
	CursorAdvances  int64 `json:"cursor_advances"`
	CursorFallbacks int64 `json:"cursor_fallbacks"`
}

// Merge folds other into c.
func (c *Channel) Merge(other *Channel) {
	c.Compiles += other.Compiles
	c.Segments += other.Segments
	c.CursorQueries += other.CursorQueries
	c.CursorAdvances += other.CursorAdvances
	c.CursorFallbacks += other.CursorFallbacks
}

// Faults counts fault-schedule activity: how many flows carried a
// non-empty schedule, how many scripted episodes overlapped their windows,
// how many storm outages were injected, and how many packets the injected
// faults (as opposed to the underlying channel) dropped per direction.
type Faults struct {
	Schedules    int64 `json:"schedules"`
	Episodes     int64 `json:"episodes"`
	StormOutages int64 `json:"storm_outages"`
	DataDrops    int64 `json:"data_drops"`
	AckDrops     int64 `json:"ack_drops"`
}

// Merge folds other into f.
func (f *Faults) Merge(other *Faults) {
	f.Schedules += other.Schedules
	f.Episodes += other.Episodes
	f.StormOutages += other.StormOutages
	f.DataDrops += other.DataDrops
	f.AckDrops += other.AckDrops
}

// Cache counts flow-result-cache activity: how many flow simulations were
// skipped because a cached result was served (Hits), how many entries were
// looked up but absent (Misses), how many concurrent lookups were collapsed
// onto an in-flight computation of the same key (Dedups), how many stored
// entries were rejected as corrupt or unreadable and fell back to simulation
// (Errors), how many entries were evicted to honour the size bound
// (Evictions), and the entry bytes moved in each direction. All fields are
// host-side resource counters: they never influence simulated behaviour, and
// a warm cache reports the same experiment output with most of the
// simulation work replaced by Hits.
type Cache struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Dedups       int64 `json:"dedups"`
	Errors       int64 `json:"errors"`
	Evictions    int64 `json:"evictions"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
}

// Merge folds other into c.
func (c *Cache) Merge(other *Cache) {
	c.Hits += other.Hits
	c.Misses += other.Misses
	c.Dedups += other.Dedups
	c.Errors += other.Errors
	c.Evictions += other.Evictions
	c.BytesRead += other.BytesRead
	c.BytesWritten += other.BytesWritten
}

// Flow is the complete telemetry bundle of one simulated flow. Attach one
// to a dataset.Scenario to collect it; every section except WallNS is
// deterministic for a given seed.
type Flow struct {
	Kernel  Kernel  `json:"kernel"`
	TCP     TCP     `json:"tcp"`
	Net     Net     `json:"net"`
	Channel Channel `json:"channel"`
	Faults  Faults  `json:"faults"`
	// WallNS is host wall-clock time spent simulating the flow. It is a
	// resource metric and NOT reproducible across runs or -jobs settings.
	WallNS int64 `json:"wall_ns"`
}

// NewFlow returns a Flow bundle with histogram bounds installed.
func NewFlow() *Flow {
	f := &Flow{}
	f.TCP = *NewTCP()
	return f
}

// FlowState is the exact wire form of a Flow bundle. The embedded Flow
// carries every integer counter and histogram verbatim (both survive a JSON
// round trip bit for bit), and CwndState carries the one floating-point
// accumulator (TCP.Cwnd) in its exact internal representation, because the
// Dist summary form is deliberately lossy. Restore reconstructs a Flow that
// merges into a Campaign byte-identically to the original, which is what
// lets a distributed campaign ship per-flow telemetry across workers and
// still produce a report bit-identical to a single-node run.
type FlowState struct {
	Flow
	CwndState stats.RunningState `json:"cwnd_state"`
}

// State snapshots the flow bundle into its exact wire form.
func (f *Flow) State() FlowState {
	s := FlowState{Flow: *f, CwndState: f.TCP.Cwnd.State()}
	s.Flow.TCP.CwndHist = cloneHist(f.TCP.CwndHist)
	s.Flow.TCP.BackoffHist = cloneHist(f.TCP.BackoffHist)
	s.Flow.TCP.ByCC = cloneByCC(f.TCP.ByCC)
	return s
}

// Restore reconstructs the flow bundle, replacing the lossy Cwnd summary
// with the exact accumulator state.
func (s *FlowState) Restore() *Flow {
	f := s.Flow
	f.TCP.Cwnd = RestoreDist(s.CwndState)
	f.TCP.CwndHist = cloneHist(s.Flow.TCP.CwndHist)
	f.TCP.BackoffHist = cloneHist(s.Flow.TCP.BackoffHist)
	f.TCP.ByCC = cloneByCC(s.Flow.TCP.ByCC)
	return &f
}

// Campaign aggregates Flow bundles into campaign totals. AddFlow is safe
// for concurrent use, but bit-identical float aggregates (the Dist merges)
// additionally require a fixed merge order — dataset.RunCampaign merges in
// flow order after its parallel phase, which both hsr and stationary
// campaigns go through, so reports are reproducible at any parallelism.
type Campaign struct {
	mu sync.Mutex

	FlowCount int64   `json:"flows"`
	Kernel    Kernel  `json:"kernel"`
	TCP       TCP     `json:"tcp"`
	Net       Net     `json:"net"`
	Channel   Channel `json:"channel"`
	Faults    Faults  `json:"faults"`
	// WallNS sums per-flow host wall time (resource metric, not
	// reproducible; flows running in parallel each contribute fully).
	WallNS int64 `json:"wall_ns"`
}

// NewCampaign returns an empty campaign collector.
func NewCampaign() *Campaign { return &Campaign{} }

// AddFlow merges one flow's telemetry into the campaign totals.
func (c *Campaign) AddFlow(f *Flow) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.FlowCount++
	c.Kernel.Merge(&f.Kernel)
	c.TCP.Merge(&f.TCP)
	c.Net.Merge(&f.Net)
	c.Channel.Merge(&f.Channel)
	c.Faults.Merge(&f.Faults)
	c.WallNS += f.WallNS
}

// Counters returns a copy of the deterministic counter sections (everything
// except the wall-clock resource fields), for reproducibility checks.
func (c *Campaign) Counters() (int64, Kernel, TCP, Net, Faults) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.TCP
	t.CwndHist = cloneHist(c.TCP.CwndHist)
	t.BackoffHist = cloneHist(c.TCP.BackoffHist)
	t.ByCC = cloneByCC(c.TCP.ByCC)
	return c.FlowCount, c.Kernel, t, c.Net, c.Faults
}

// ChannelCounters returns a copy of the campaign's channel-timeline section
// (deterministic, like the Counters sections).
func (c *Campaign) ChannelCounters() Channel {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Channel
}

// Merge folds another campaign's totals into c, so a long-running service
// can aggregate per-job campaigns into a process-wide total. Like AddFlow,
// bit-identical float aggregates require a fixed merge order across calls.
func (c *Campaign) Merge(other *Campaign) {
	if other == nil || other == c {
		return
	}
	// Snapshot other under its own lock first: locking both at once could
	// deadlock if two campaigns ever merged into each other concurrently.
	snap := other.snapshot()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.FlowCount += snap.FlowCount
	c.Kernel.Merge(&snap.Kernel)
	c.TCP.Merge(&snap.TCP)
	c.Net.Merge(&snap.Net)
	c.Channel.Merge(&snap.Channel)
	c.Faults.Merge(&snap.Faults)
	c.WallNS += snap.WallNS
}

// campaignSnapshot is a self-contained copy of a campaign's aggregate
// fields (no lock, unlike Campaign itself).
type campaignSnapshot struct {
	FlowCount int64
	Kernel    Kernel
	TCP       TCP
	Net       Net
	Channel   Channel
	Faults    Faults
	WallNS    int64
}

// snapshot returns a locked, self-contained copy of the campaign's
// aggregate fields (histogram storage is deep-copied: a plain struct copy
// would share its count slices with the live campaign).
func (c *Campaign) snapshot() campaignSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := campaignSnapshot{
		FlowCount: c.FlowCount,
		Kernel:    c.Kernel,
		TCP:       c.TCP,
		Net:       c.Net,
		Channel:   c.Channel,
		Faults:    c.Faults,
		WallNS:    c.WallNS,
	}
	snap.TCP.CwndHist = cloneHist(c.TCP.CwndHist)
	snap.TCP.BackoffHist = cloneHist(c.TCP.BackoffHist)
	snap.TCP.ByCC = cloneByCC(c.TCP.ByCC)
	return snap
}

// cloneHist deep-copies a histogram's storage.
func cloneHist(h Hist) Hist {
	return Hist{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]int64(nil), h.Counts...),
	}
}
