package telemetry

import (
	"repro/internal/trace"
)

// FlightRecorder is an opt-in bounded ring of per-flow state-transition
// records: congestion-control phase changes (timeout-recovery entry via
// EvTimeout/EvFastRetx, recovery exit — the return to slow start — via
// EvRecovered, with the RTO backoff exponent riding on the timeout events)
// and loss episodes (EvDataDrop, EvAckDrop — an ACK-burst-loss episode shows
// up as a run of consecutive ack-drops). It implements trace.Recorder, so
// it tees off the same event stream the full packet trace records, keeps
// only the last capacity matching records, and never allocates after
// construction — the ring is safe to leave attached to multi-minute flows.
//
// Dump the ring with Trace and write it through the existing trace codecs;
// the resulting JSONL is a regular (sparse) FlowTrace that traceanalyze can
// read back.
type FlightRecorder struct {
	ring    []trace.Event
	next    int
	full    bool
	matched int64
	keepAll bool
}

// NewFlightRecorder returns a recorder retaining the last capacity
// state-transition records. It panics on a non-positive capacity.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		panic("telemetry: NewFlightRecorder requires a positive capacity")
	}
	return &FlightRecorder{ring: make([]trace.Event, capacity)}
}

// SetKeepAll switches the recorder from state-transition events only to
// every event type (a short full-detail window before a failure).
func (r *FlightRecorder) SetKeepAll(on bool) { r.keepAll = on }

// transition reports whether t is a state-transition or loss-episode event.
func transition(t trace.EventType) bool {
	switch t {
	case trace.EvTimeout, trace.EvFastRetx, trace.EvRecovered,
		trace.EvDataDrop, trace.EvAckDrop:
		return true
	}
	return false
}

// Record implements trace.Recorder. It is allocation-free.
func (r *FlightRecorder) Record(ev trace.Event) {
	if !r.keepAll && !transition(ev.Type) {
		return
	}
	r.matched++
	r.ring[r.next] = ev
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
}

// Len returns how many records the ring currently retains.
func (r *FlightRecorder) Len() int {
	if r.full {
		return len(r.ring)
	}
	return r.next
}

// Overwritten returns how many matching records have been pushed out of the
// ring by newer ones.
func (r *FlightRecorder) Overwritten() int64 {
	return r.matched - int64(r.Len())
}

// Events returns the retained records in chronological order (a copy; the
// ring keeps recording).
func (r *FlightRecorder) Events() []trace.Event {
	out := make([]trace.Event, 0, r.Len())
	if r.full {
		out = append(out, r.ring[r.next:]...)
	}
	return append(out, r.ring[:r.next]...)
}

// Trace packages the retained records as a FlowTrace under the given
// metadata, ready for trace.WriteJSONL / trace.WriteBinary.
func (r *FlightRecorder) Trace(meta trace.FlowMeta) *trace.FlowTrace {
	return &trace.FlowTrace{Meta: meta, Events: r.Events()}
}

// Reset clears the ring for reuse on another flow.
func (r *FlightRecorder) Reset() {
	r.next = 0
	r.full = false
	r.matched = 0
}

var _ trace.Recorder = (*FlightRecorder)(nil)
