package telemetry

// Hist is a fixed-bound histogram: Counts[i] counts samples x <= Bounds[i]
// (for the smallest such i) and the final bucket counts overflow beyond the
// last bound. All storage is allocated once at construction, so Add is
// allocation-free and safe on hot paths.
type Hist struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last bucket is overflow
}

// NewHist builds a histogram over the given ascending upper bounds. It
// panics on no bounds or non-ascending bounds: histogram shapes are static
// program facts, not runtime inputs.
func NewHist(bounds ...float64) Hist {
	if len(bounds) == 0 {
		panic("telemetry: NewHist requires at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: NewHist bounds must be strictly ascending")
		}
	}
	return Hist{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]int64, len(bounds)+1),
	}
}

// Add buckets one sample. A zero-value Hist (no bounds) silently discards
// samples, preserving the nil-sink discipline of the package.
func (h *Hist) Add(x float64) {
	if len(h.Counts) == 0 {
		return
	}
	for i, b := range h.Bounds {
		if x <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Counts)-1]++
}

// Total returns the number of samples bucketed.
func (h *Hist) Total() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Merge folds other into h. An empty receiver adopts the other's shape; an
// empty other is a no-op. Merging two non-empty histograms with different
// shapes panics — that is a programming error, not a data condition.
func (h *Hist) Merge(other *Hist) {
	if len(other.Counts) == 0 {
		return
	}
	if len(h.Counts) == 0 {
		h.Bounds = append([]float64(nil), other.Bounds...)
		h.Counts = append([]int64(nil), other.Counts...)
		return
	}
	if len(h.Counts) != len(other.Counts) {
		panic("telemetry: Hist.Merge with mismatched bucket shapes")
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
}
