package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// The distributed merge path rests on three properties of Campaign
// aggregation, tested here over randomized shard partitions of a seeded
// synthetic campaign:
//
//  1. identity — merging an empty campaign is a no-op, merging into an
//     empty campaign copies (exact, byte for byte);
//  2. associativity / commutativity-up-to-flow-order — integer counter
//     sections are exact under any partition and any merge nesting; the
//     floating-point distributions agree to within rounding (the Chan
//     et al. combine is order-sensitive in the last bits, which is WHY
//     the coordinator merges per flow in flow order rather than merging
//     shard aggregates);
//  3. flow-order replay — adding the same flows in the same flow order
//     is byte-identical no matter how they were partitioned across
//     workers. This is the exact invariant the coordinator uses.

// intSections marshals everything except the float distributions, for exact
// comparison under arbitrary merge nesting.
func intSections(t *testing.T, c *Campaign) []byte {
	t.Helper()
	flows, k, tcp, n, f := c.Counters()
	tcp.Cwnd = Dist{} // float accumulator excluded; checked with tolerance
	doc := struct {
		Flows  int64
		Kernel Kernel
		TCP    TCP
		Net    Net
		Faults Faults
	}{flows, k, tcp, n, f}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return raw
}

// distClose compares two distributions to within relative rounding slack.
func distClose(a, b *Dist) bool {
	if a.N() != b.N() {
		return false
	}
	if a.N() == 0 {
		return true
	}
	rel := func(x, y float64) float64 {
		d := math.Abs(x - y)
		if d == 0 {
			return 0
		}
		return d / math.Max(math.Abs(x), math.Abs(y))
	}
	return rel(a.Mean(), b.Mean()) < 1e-9 && rel(a.Max(), b.Max()) == 0
}

// shardCampaign partitions flows into shards by the seeded rng and
// aggregates each shard with AddFlow in flow order.
func shardCampaign(flows []*Flow, rng *rand.Rand, shards int) []*Campaign {
	assign := make([]int, len(flows))
	for i := range assign {
		assign[i] = rng.Intn(shards)
	}
	out := make([]*Campaign, shards)
	for s := 0; s < shards; s++ {
		out[s] = NewCampaign()
		for i, f := range flows {
			if assign[i] == s {
				out[s].AddFlow(f)
			}
		}
	}
	return out
}

func seededFlows(seed int64, n int) []*Flow {
	rng := rand.New(rand.NewSource(seed))
	flows := make([]*Flow, n)
	for i := range flows {
		flows[i] = randomFlow(rng)
	}
	return flows
}

func TestCampaignMergeIdentity(t *testing.T) {
	flows := seededFlows(11, 20)
	ref := NewCampaign()
	for _, f := range flows {
		ref.AddFlow(f)
	}
	refBytes := campaignBytes(t, ref)

	// Merging an empty campaign is a no-op, byte for byte.
	ref.Merge(NewCampaign())
	if got := campaignBytes(t, ref); !bytes.Equal(refBytes, got) {
		t.Fatalf("merging empty changed the campaign:\n%s\nvs\n%s", refBytes, got)
	}
	// Merging into an empty campaign copies, byte for byte.
	empty := NewCampaign()
	empty.Merge(ref)
	if got := campaignBytes(t, empty); !bytes.Equal(refBytes, got) {
		t.Fatalf("merge into empty is not a copy:\n%s\nvs\n%s", refBytes, got)
	}
	// Self-merge is a no-op by contract.
	ref.Merge(ref)
	if got := campaignBytes(t, ref); !bytes.Equal(refBytes, got) {
		t.Fatalf("self-merge changed the campaign")
	}
}

func TestCampaignMergePartitionProperties(t *testing.T) {
	flows := seededFlows(23, 40)
	ref := NewCampaign()
	for _, f := range flows {
		ref.AddFlow(f)
	}
	refInts := intSections(t, ref)
	_, _, refTCP, _, _ := ref.Counters()

	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		shards := shardCampaign(flows, rng, 1+rng.Intn(6))

		// Merge the shard aggregates in a random nesting and order:
		// integer sections must match the single-node aggregate exactly,
		// distributions to within rounding.
		order := rng.Perm(len(shards))
		merged := NewCampaign()
		for _, s := range order {
			merged.Merge(shards[s])
		}
		if got := intSections(t, merged); !bytes.Equal(refInts, got) {
			t.Fatalf("trial %d: integer sections diverged under partition %v:\n%s\nvs\n%s",
				trial, order, refInts, got)
		}
		_, _, gotTCP, _, _ := merged.Counters()
		if !distClose(&refTCP.Cwnd, &gotTCP.Cwnd) {
			t.Fatalf("trial %d: cwnd distribution outside rounding slack: ref n=%d mean=%v, got n=%d mean=%v",
				trial, refTCP.Cwnd.N(), refTCP.Cwnd.Mean(), gotTCP.Cwnd.N(), gotTCP.Cwnd.Mean())
		}

		// Associativity of the shard merges: left fold vs right-leaning
		// nesting, integer sections exact.
		if len(shards) >= 3 {
			left := NewCampaign()
			left.Merge(shards[0])
			left.Merge(shards[1])
			left.Merge(shards[2])
			rightInner := NewCampaign()
			rightInner.Merge(shards[1])
			rightInner.Merge(shards[2])
			right := NewCampaign()
			right.Merge(shards[0])
			right.Merge(rightInner)
			if a, b := intSections(t, left), intSections(t, right); !bytes.Equal(a, b) {
				t.Fatalf("trial %d: integer sections not associative:\n%s\nvs\n%s", trial, a, b)
			}
		}
	}
}

// TestCampaignFlowOrderReplayExact is the coordinator's actual merge
// discipline: workers ship per-flow bundles, the coordinator replays
// AddFlow in global flow order. Any partition of flows across workers must
// then produce a byte-identical campaign — including the float sections.
func TestCampaignFlowOrderReplayExact(t *testing.T) {
	flows := seededFlows(47, 40)
	ref := NewCampaign()
	for _, f := range flows {
		ref.AddFlow(f)
	}
	refBytes := campaignBytes(t, ref)

	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		// Partition into contiguous ranges like the coordinator's units.
		nUnits := 1 + rng.Intn(8)
		cuts := map[int]bool{0: true, len(flows): true}
		for len(cuts) < nUnits+1 {
			cuts[rng.Intn(len(flows))] = true
		}
		bounds := make([]int, 0, len(cuts))
		for c := range cuts {
			bounds = append(bounds, c)
		}
		sort.Ints(bounds)

		// Each unit round-trips its flows through the wire form (as a
		// remote worker would); the coordinator replays in flow order.
		type unit struct{ restored []*Flow }
		units := make([]unit, len(bounds)-1)
		for u := 0; u < len(units); u++ {
			for i := bounds[u]; i < bounds[u+1]; i++ {
				state := flows[i].State()
				raw, err := json.Marshal(&state)
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				var dec FlowState
				if err := json.Unmarshal(raw, &dec); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				units[u].restored = append(units[u].restored, dec.Restore())
			}
		}
		merged := NewCampaign()
		for _, u := range units {
			for _, f := range u.restored {
				merged.AddFlow(f)
			}
		}
		if got := campaignBytes(t, merged); !bytes.Equal(refBytes, got) {
			t.Fatalf("trial %d (bounds %v): flow-order replay not byte-identical:\n%s\nvs\n%s",
				trial, bounds, refBytes, got)
		}
	}
}
