package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// TextExposer renders counters and gauges in the Prometheus text exposition
// format ("name value" lines, '#'-prefixed comments). It exists so a
// long-running service can publish the same telemetry counters the JSON
// reports carry without taking on a metrics dependency: every line derives
// from deterministic integers (plus whatever gauges the caller adds), and
// lines are emitted in call order, so scrapes of identical state are
// byte-identical.
//
// Write errors are sticky: the first one is remembered, later calls are
// no-ops, and Flush reports it.
type TextExposer struct {
	w      *bufio.Writer
	prefix string
	err    error
}

// NewTextExposer wraps w; every metric name is prepended with prefix
// (conventionally the service name plus '_').
func NewTextExposer(w io.Writer, prefix string) *TextExposer {
	return &TextExposer{w: bufio.NewWriter(w), prefix: prefix}
}

// Comment emits a '#'-prefixed comment line.
func (e *TextExposer) Comment(text string) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, "# %s\n", text)
}

// Int emits one integer-valued metric line.
func (e *TextExposer) Int(name string, v int64) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, "%s%s %d\n", e.prefix, name, v)
}

// Float emits one float-valued metric line ('g' formatting, so integral
// values stay terse and scrapes stay deterministic).
func (e *TextExposer) Float(name string, v float64) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, "%s%s %s\n", e.prefix, name, strconv.FormatFloat(v, 'g', -1, 64))
}

// IntLabeled emits one integer-valued metric line with labels, given as
// key, value pairs emitted in call order (so scrapes stay byte-identical).
func (e *TextExposer) IntLabeled(name string, v int64, labels ...string) {
	if e.err != nil {
		return
	}
	if _, e.err = fmt.Fprintf(e.w, "%s%s{", e.prefix, name); e.err != nil {
		return
	}
	for i := 0; i+1 < len(labels); i += 2 {
		sep := ""
		if i > 0 {
			sep = ","
		}
		if _, e.err = fmt.Fprintf(e.w, "%s%s=%q", sep, labels[i], labels[i+1]); e.err != nil {
			return
		}
	}
	_, e.err = fmt.Fprintf(e.w, "} %d\n", v)
}

// BuildInfo emits the conventional build_info gauge — a constant 1 whose
// version label carries the build — so dashboards can join fleet metrics
// against deployed versions.
func (e *TextExposer) BuildInfo(version string) {
	e.IntLabeled("build_info", 1, "version", version)
}

// Dist emits a distribution as a Prometheus summary-style metric family:
// _count and _sum always (so rates and averages derive server-side), _min
// and _max when non-empty (NaN never leaks into the exposition).
func (e *TextExposer) Dist(name string, d *Dist) {
	e.Int(name+"_count", int64(d.N()))
	e.Float(name+"_sum", d.Sum())
	if d.N() > 0 {
		e.Float(name+"_min", d.Min())
		e.Float(name+"_max", d.Max())
	}
}

// Cache emits the flow-result-cache counters.
func (e *TextExposer) Cache(c *Cache) {
	e.Int("cache_hits_total", c.Hits)
	e.Int("cache_misses_total", c.Misses)
	e.Int("cache_dedups_total", c.Dedups)
	e.Int("cache_errors_total", c.Errors)
	e.Int("cache_evictions_total", c.Evictions)
	e.Int("cache_read_bytes_total", c.BytesRead)
	e.Int("cache_written_bytes_total", c.BytesWritten)
}

// Fleet emits the distributed-campaign coordinator counters.
func (e *TextExposer) Fleet(f *Fleet) {
	e.Int("fleet_workers", f.Workers)
	e.Int("fleet_units_total", f.Units)
	e.Int("fleet_units_dispatched_total", f.UnitsDispatched)
	e.Int("fleet_units_completed_total", f.UnitsCompleted)
	e.Int("fleet_units_local_total", f.UnitsLocal)
	e.Int("fleet_retries_total", f.Retries)
	e.Int("fleet_reassignments_total", f.Reassignments)
	e.Int("fleet_hedges_total", f.Hedges)
	e.Int("fleet_duplicate_results_total", f.DuplicateResults)
	e.Int("fleet_workers_lost_total", f.WorkersLost)
	e.Int("fleet_workers_readmitted_total", f.WorkersReadmitted)
	e.Int("fleet_degraded_campaigns_total", f.Degraded)
}

// Campaign emits the deterministic counter sections of a campaign
// aggregate: flow count, kernel, endpoint, link and fault totals.
func (e *TextExposer) Campaign(c *Campaign) {
	flows, k, t, n, f := c.Counters()
	e.Int("campaign_flows_total", flows)
	e.Int("kernel_events_total", k.Events)
	e.Int("kernel_scheduled_total", k.Scheduled)
	e.Int("kernel_virtual_ns_total", k.VirtualNS)
	e.Int("kernel_cascades_total", k.Cascades)
	e.Int("kernel_rearms_in_place_total", k.RearmsInPlace)
	e.Int("kernel_batches_total", k.Batches)
	e.Int("kernel_batch_events_total", k.BatchEvents)
	e.Int("kernel_max_batch", k.MaxBatch)
	e.Int("kernel_max_slot_occupancy", k.MaxSlot)
	e.Int("kernel_max_pending", k.MaxPending)
	e.Int("tcp_flows_total", t.Flows)
	e.Int("tcp_data_sent_total", t.DataSent)
	e.Int("tcp_retransmissions_total", t.Retransmissions)
	e.Int("tcp_timeouts_total", t.Timeouts)
	e.Int("tcp_fast_retransmits_total", t.FastRetransmits)
	e.Int("tcp_spurious_recoveries_total", t.SpuriousRecoveries)
	e.Int("tcp_recovery_phases_total", t.RecoveryPhases)
	// Per-variant breakdown, sorted by variant name so scrapes of
	// identical state stay byte-identical.
	ccNames := make([]string, 0, len(t.ByCC))
	for name := range t.ByCC {
		ccNames = append(ccNames, name)
	}
	sort.Strings(ccNames)
	for _, name := range ccNames {
		s := t.ByCC[name]
		e.IntLabeled("tcp_cc_flows_total", s.Flows, "cc", name)
		e.IntLabeled("tcp_cc_data_sent_total", s.DataSent, "cc", name)
		e.IntLabeled("tcp_cc_retransmissions_total", s.Retransmissions, "cc", name)
		e.IntLabeled("tcp_cc_unique_delivered_total", s.UniqueDelivered, "cc", name)
		e.IntLabeled("tcp_cc_timeouts_total", s.Timeouts, "cc", name)
		e.IntLabeled("tcp_cc_fast_retransmits_total", s.FastRetransmits, "cc", name)
		e.IntLabeled("tcp_cc_cwnd_samples_total", s.CwndHist.Total(), "cc", name)
	}
	e.Int("net_data_offered_total", n.Data.Offered)
	e.Int("net_data_delivered_total", n.Data.Delivered)
	e.Int("net_data_channel_drops_total", n.Data.ChannelDrops)
	e.Int("net_data_queue_drops_total", n.Data.QueueDrops)
	e.Int("net_ack_offered_total", n.Ack.Offered)
	e.Int("net_ack_delivered_total", n.Ack.Delivered)
	e.Int("net_ack_channel_drops_total", n.Ack.ChannelDrops)
	e.Int("net_ack_queue_drops_total", n.Ack.QueueDrops)
	e.Int("net_data_vector_bursts_total", n.Data.VectorBursts)
	e.Int("net_data_vector_packets_total", n.Data.VectorPackets)
	e.Int("net_ack_vector_bursts_total", n.Ack.VectorBursts)
	e.Int("net_ack_vector_packets_total", n.Ack.VectorPackets)
	ch := c.ChannelCounters()
	e.Int("channel_compiles_total", ch.Compiles)
	e.Int("channel_segments_total", ch.Segments)
	e.Int("channel_cursor_queries_total", ch.CursorQueries)
	e.Int("channel_cursor_advances_total", ch.CursorAdvances)
	e.Int("channel_cursor_fallbacks_total", ch.CursorFallbacks)
	e.Int("faults_schedules_total", f.Schedules)
	e.Int("faults_episodes_total", f.Episodes)
	e.Int("faults_data_drops_total", f.DataDrops)
	e.Int("faults_ack_drops_total", f.AckDrops)
}

// Flush writes out buffered lines and returns the first error encountered.
func (e *TextExposer) Flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}
